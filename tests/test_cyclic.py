"""Tests for cyclic-graph scheduling via SCC clustering."""

import pytest

from repro.exceptions import InconsistentGraphError
from repro.sdf.graph import SDFGraph
from repro.sdf.simulate import validate_schedule
from repro.scheduling.cyclic import (
    cluster_cycles,
    schedule_cyclic,
    strongly_connected_components,
)


def feedback_graph():
    """A -> B <-> C -> D with one delay on the feedback edge."""
    g = SDFGraph("cyc")
    g.add_actors("ABCD")
    g.add_edge("A", "B", 2, 1)
    g.add_edge("B", "C", 1, 1)
    g.add_edge("C", "B", 1, 1, delay=1)
    g.add_edge("C", "D", 3, 2)
    return g


class TestSCC:
    def test_acyclic_graph_all_singletons(self):
        g = SDFGraph()
        g.add_actors("ABC")
        g.add_edge("A", "B", 1, 1)
        g.add_edge("B", "C", 1, 1)
        comps = strongly_connected_components(g)
        assert sorted(len(c) for c in comps) == [1, 1, 1]

    def test_feedback_pair_detected(self):
        comps = strongly_connected_components(feedback_graph())
        multi = [c for c in comps if len(c) > 1]
        assert len(multi) == 1
        assert sorted(multi[0]) == ["B", "C"]

    def test_whole_graph_cycle(self):
        g = SDFGraph()
        g.add_actors("ABC")
        g.add_edge("A", "B", 1, 1)
        g.add_edge("B", "C", 1, 1)
        g.add_edge("C", "A", 1, 1, delay=1)
        comps = strongly_connected_components(g)
        assert len(comps) == 1
        assert sorted(comps[0]) == ["A", "B", "C"]

    def test_reverse_topological_order(self):
        comps = strongly_connected_components(feedback_graph())
        position = {frozenset(c): i for i, c in enumerate(comps)}
        # D's component must appear before B/C's (reverse topological).
        assert position[frozenset(["D"])] < position[frozenset(["B", "C"])]


class TestClusterCycles:
    def test_quotient_is_acyclic_and_consistent(self):
        from repro.sdf.repetitions import is_consistent
        clustered = cluster_cycles(feedback_graph())
        assert clustered.quotient.is_acyclic()
        assert is_consistent(clustered.quotient)

    def test_members_partition_actors(self):
        clustered = cluster_cycles(feedback_graph())
        all_members = [a for m in clustered.members.values() for a in m]
        assert sorted(all_members) == ["A", "B", "C", "D"]

    def test_subschedule_only_for_multi_actor_sccs(self):
        clustered = cluster_cycles(feedback_graph())
        assert len(clustered.subschedules) == 1
        (name, sub), = clustered.subschedules.items()
        assert sorted(sub.firings_per_actor()) == ["B", "C"]

    def test_deadlocked_scc_rejected(self):
        g = SDFGraph()
        g.add_actors("AB")
        g.add_edge("A", "B", 1, 1)
        g.add_edge("B", "A", 1, 1)  # no delay: deadlock
        with pytest.raises(InconsistentGraphError) as exc:
            cluster_cycles(g)
        assert exc.value.kind == "deadlock"

    def test_self_loop_actor(self):
        g = SDFGraph()
        g.add_actors("AB")
        g.add_edge("A", "A", 2, 2, delay=2)
        g.add_edge("A", "B", 1, 1)
        clustered = cluster_cycles(g)
        assert clustered.quotient.is_acyclic()


class TestScheduleCyclic:
    def test_feedback_schedule_valid(self):
        g = feedback_graph()
        result = schedule_cyclic(g)
        validate_schedule(g, result.schedule)

    def test_acyclic_passthrough(self):
        g = SDFGraph()
        g.add_actors("ABC")
        g.add_edge("A", "B", 2, 1)
        g.add_edge("B", "C", 1, 3)
        result = schedule_cyclic(g)
        validate_schedule(g, result.schedule)
        # No composites: quotient schedule == expanded schedule.
        assert result.schedule.firing_list() == (
            result.quotient_schedule.firing_list()
        )

    def test_nonshared_objective(self):
        g = feedback_graph()
        result = schedule_cyclic(g, shared=False)
        validate_schedule(g, result.schedule)

    def test_multirate_feedback(self):
        """Feedback with rate changes: B fires 3x per C, delay covers it."""
        g = SDFGraph()
        g.add_actors("SBCT")
        g.add_edge("S", "B", 3, 1)
        g.add_edge("B", "C", 1, 3)
        g.add_edge("C", "B", 3, 1, delay=3)
        g.add_edge("C", "T", 1, 1)
        result = schedule_cyclic(g)
        validate_schedule(g, result.schedule)

    def test_two_independent_cycles(self):
        g = SDFGraph()
        g.add_actors(["a1", "a2", "b1", "b2", "mid"])
        g.add_edge("a1", "a2", 1, 1)
        g.add_edge("a2", "a1", 1, 1, delay=1)
        g.add_edge("a2", "mid", 1, 1)
        g.add_edge("mid", "b1", 1, 1)
        g.add_edge("b1", "b2", 1, 1)
        g.add_edge("b2", "b1", 1, 1, delay=1)
        result = schedule_cyclic(g)
        validate_schedule(g, result.schedule)
        assert len(result.clustered.subschedules) == 2
