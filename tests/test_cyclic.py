"""Tests for cyclic-graph scheduling via SCC clustering."""

import pytest

from repro.exceptions import InconsistentGraphError
from repro.sdf.graph import SDFGraph
from repro.sdf.random_graphs import random_cyclic_sdf_graph
from repro.sdf.repetitions import repetitions_vector
from repro.sdf.simulate import validate_schedule
from repro.scheduling.cyclic import (
    cluster_cycles,
    schedule_cyclic,
    strongly_connected_components,
)


def feedback_graph():
    """A -> B <-> C -> D with one delay on the feedback edge."""
    g = SDFGraph("cyc")
    g.add_actors("ABCD")
    g.add_edge("A", "B", 2, 1)
    g.add_edge("B", "C", 1, 1)
    g.add_edge("C", "B", 1, 1, delay=1)
    g.add_edge("C", "D", 3, 2)
    return g


class TestSCC:
    def test_acyclic_graph_all_singletons(self):
        g = SDFGraph()
        g.add_actors("ABC")
        g.add_edge("A", "B", 1, 1)
        g.add_edge("B", "C", 1, 1)
        comps = strongly_connected_components(g)
        assert sorted(len(c) for c in comps) == [1, 1, 1]

    def test_feedback_pair_detected(self):
        comps = strongly_connected_components(feedback_graph())
        multi = [c for c in comps if len(c) > 1]
        assert len(multi) == 1
        assert sorted(multi[0]) == ["B", "C"]

    def test_whole_graph_cycle(self):
        g = SDFGraph()
        g.add_actors("ABC")
        g.add_edge("A", "B", 1, 1)
        g.add_edge("B", "C", 1, 1)
        g.add_edge("C", "A", 1, 1, delay=1)
        comps = strongly_connected_components(g)
        assert len(comps) == 1
        assert sorted(comps[0]) == ["A", "B", "C"]

    def test_reverse_topological_order(self):
        comps = strongly_connected_components(feedback_graph())
        position = {frozenset(c): i for i, c in enumerate(comps)}
        # D's component must appear before B/C's (reverse topological).
        assert position[frozenset(["D"])] < position[frozenset(["B", "C"])]


class TestClusterCycles:
    def test_quotient_is_acyclic_and_consistent(self):
        from repro.sdf.repetitions import is_consistent
        clustered = cluster_cycles(feedback_graph())
        assert clustered.quotient.is_acyclic()
        assert is_consistent(clustered.quotient)

    def test_members_partition_actors(self):
        clustered = cluster_cycles(feedback_graph())
        all_members = [a for m in clustered.members.values() for a in m]
        assert sorted(all_members) == ["A", "B", "C", "D"]

    def test_subschedule_only_for_multi_actor_sccs(self):
        clustered = cluster_cycles(feedback_graph())
        assert len(clustered.subschedules) == 1
        (name, sub), = clustered.subschedules.items()
        assert sorted(sub.firings_per_actor()) == ["B", "C"]

    def test_deadlocked_scc_rejected(self):
        g = SDFGraph()
        g.add_actors("AB")
        g.add_edge("A", "B", 1, 1)
        g.add_edge("B", "A", 1, 1)  # no delay: deadlock
        with pytest.raises(InconsistentGraphError) as exc:
            cluster_cycles(g)
        assert exc.value.kind == "deadlock"

    def test_self_loop_actor(self):
        g = SDFGraph()
        g.add_actors("AB")
        g.add_edge("A", "A", 2, 2, delay=2)
        g.add_edge("A", "B", 1, 1)
        clustered = cluster_cycles(g)
        assert clustered.quotient.is_acyclic()

    def test_composite_name_avoids_existing_actor(self):
        # Regression: an original actor literally named "scc0" used to
        # collide with the first composite's generated name.
        g = SDFGraph()
        g.add_actors(["scc0", "A", "B"])
        g.add_edge("scc0", "A", 1, 1)
        g.add_edge("A", "B", 1, 1)
        g.add_edge("B", "A", 1, 1, delay=1)
        clustered = cluster_cycles(g)
        assert sorted(clustered.quotient.actor_names()) == ["scc0", "scc1"]
        assert clustered.members["scc0"] == ["scc0"]
        assert sorted(clustered.members["scc1"]) == ["A", "B"]
        result = schedule_cyclic(g)
        validate_schedule(g, result.schedule)

    def test_composite_name_skips_every_taken_name(self):
        # Both "scc0" and "scc1" are real actors *inside* the cycle.
        g = SDFGraph()
        g.add_actors(["scc0", "scc1"])
        g.add_edge("scc0", "scc1", 1, 1)
        g.add_edge("scc1", "scc0", 1, 1, delay=1)
        clustered = cluster_cycles(g)
        (name,) = clustered.members
        assert name == "scc2"
        assert sorted(clustered.members[name]) == ["scc0", "scc1"]


class TestScheduleCyclic:
    def test_feedback_schedule_valid(self):
        g = feedback_graph()
        result = schedule_cyclic(g)
        validate_schedule(g, result.schedule)

    def test_acyclic_passthrough(self):
        g = SDFGraph()
        g.add_actors("ABC")
        g.add_edge("A", "B", 2, 1)
        g.add_edge("B", "C", 1, 3)
        result = schedule_cyclic(g)
        validate_schedule(g, result.schedule)
        # No composites: quotient schedule == expanded schedule.
        assert result.schedule.firing_list() == (
            result.quotient_schedule.firing_list()
        )

    def test_nonshared_objective(self):
        g = feedback_graph()
        result = schedule_cyclic(g, shared=False)
        validate_schedule(g, result.schedule)

    def test_multirate_feedback(self):
        """Feedback with rate changes: B fires 3x per C, delay covers it."""
        g = SDFGraph()
        g.add_actors("SBCT")
        g.add_edge("S", "B", 3, 1)
        g.add_edge("B", "C", 1, 3)
        g.add_edge("C", "B", 3, 1, delay=3)
        g.add_edge("C", "T", 1, 1)
        result = schedule_cyclic(g)
        validate_schedule(g, result.schedule)

    def test_two_independent_cycles(self):
        g = SDFGraph()
        g.add_actors(["a1", "a2", "b1", "b2", "mid"])
        g.add_edge("a1", "a2", 1, 1)
        g.add_edge("a2", "a1", 1, 1, delay=1)
        g.add_edge("a2", "mid", 1, 1)
        g.add_edge("mid", "b1", 1, 1)
        g.add_edge("b1", "b2", 1, 1)
        g.add_edge("b2", "b1", 1, 1, delay=1)
        result = schedule_cyclic(g)
        validate_schedule(g, result.schedule)
        assert len(result.clustered.subschedules) == 2


class _CountingGraph:
    """Duck-typed graph wrapper counting successor-list fetches."""

    def __init__(self, g):
        self._g = g
        self.successor_calls = 0
        self.successor_elements = 0

    def actor_names(self):
        return self._g.actor_names()

    def successors(self, node):
        succ = self._g.successors(node)
        self.successor_calls += 1
        self.successor_elements += len(succ)
        return succ


class TestSCCScaling:
    def test_wide_node_fetches_successors_once(self):
        # Regression: the iterative Tarjan refetched (and rescanned) a
        # node's successor list once per tree child, turning a hub with
        # n children into O(n^2) work.  A star graph makes every leaf a
        # tree child of the hub; the fixed walk fetches each node's
        # successors exactly once and materializes O(V + E) elements.
        n = 300
        g = SDFGraph("star")
        g.add_actor("hub")
        for i in range(n):
            leaf = f"l{i}"
            g.add_actor(leaf)
            g.add_edge("hub", leaf, 1, 1)
        counting = _CountingGraph(g)
        comps = strongly_connected_components(counting)
        assert len(comps) == n + 1
        assert counting.successor_calls == n + 1
        assert counting.successor_elements == n  # hub's list, once

    def test_deep_chain_cycle_survives(self):
        # Depth stress: a 1500-actor ring would blow the recursion limit
        # in a recursive Tarjan; the iterative walk must return one SCC.
        n = 1500
        g = SDFGraph("ring")
        names = [f"c{i}" for i in range(n)]
        for a in names:
            g.add_actor(a)
        for u, v in zip(names, names[1:]):
            g.add_edge(u, v, 1, 1)
        g.add_edge(names[-1], names[0], 1, 1, delay=1)
        comps = strongly_connected_components(g)
        assert len(comps) == 1
        assert len(comps[0]) == n


class TestSubscheduleCompression:
    def test_consecutive_firings_merge(self):
        # Regression: the greedy SCC subschedule used to be a flat
        # firing list (B B B C); consecutive runs must compress into
        # counted firings so the subschedule stays single appearance.
        g = SDFGraph()
        g.add_actors("SBCT")
        g.add_edge("S", "B", 3, 1)
        g.add_edge("B", "C", 1, 3)
        g.add_edge("C", "B", 3, 1, delay=3)
        g.add_edge("C", "T", 1, 1)
        clustered = cluster_cycles(g)
        (sub,) = clustered.subschedules.values()
        assert sub.is_single_appearance()
        assert len(sub.body) == 2  # (3 B) C, not B B B C
        counts = sub.firings_per_actor()
        assert counts == {"B": 3, "C": 1}

    def test_expanded_schedule_single_appearance(self):
        g = SDFGraph()
        g.add_actors("SBCT")
        g.add_edge("S", "B", 3, 1)
        g.add_edge("B", "C", 1, 3)
        g.add_edge("C", "B", 3, 1, delay=3)
        g.add_edge("C", "T", 1, 1)
        result = schedule_cyclic(g)
        assert result.schedule.is_single_appearance()


class TestScheduleCyclicEndToEnd:
    @pytest.mark.parametrize("seed", range(6))
    def test_random_cyclic_graphs_validate(self, seed):
        g = random_cyclic_sdf_graph(
            3 + seed % 4, seed=seed, num_feedback=1 + seed % 2,
            max_repetition=5,
        )
        assert not g.is_acyclic()
        result = schedule_cyclic(g)
        counts = validate_schedule(g, result.schedule)
        assert counts == repetitions_vector(g)

    @pytest.mark.parametrize("seed", range(4))
    def test_cyclic_oracles_clean(self, seed):
        # The full oracle battery for the cyclic family: schedule,
        # token replay, and (when the schedule is single appearance)
        # lifetimes, allocation, VM, and generated-Python execution.
        from repro.check.oracles import cyclic_oracles

        g = random_cyclic_sdf_graph(4 + seed, seed=seed, max_repetition=4)
        assert cyclic_oracles(g) == []

    def test_pipeline_executes_cyclic_schedule(self):
        # Interpreter counts vs VM vs generated Python on a cyclic
        # graph, driven through the real lifetime/allocation path.
        from repro.allocation.first_fit import first_fit
        from repro.allocation.verify import verify_allocation
        from repro.codegen.vm import SharedMemoryVM
        from repro.lifetimes.intervals import extract_lifetimes

        g = SDFGraph()
        g.add_actors("SBCT")
        g.add_edge("S", "B", 3, 1)
        g.add_edge("B", "C", 1, 3)
        g.add_edge("C", "B", 3, 1, delay=3)
        g.add_edge("C", "T", 1, 1)
        result = schedule_cyclic(g)
        assert result.schedule.is_single_appearance()
        q = repetitions_vector(g)
        lifetimes = extract_lifetimes(g, result.schedule, q)
        allocation = first_fit(lifetimes.as_list())
        verify_allocation(lifetimes.as_list(), allocation)
        vm = SharedMemoryVM(g, lifetimes, allocation)
        vm.run(periods=2)
        assert vm.firings_per_actor == {a: 2 * q[a] for a in q}

    def test_deadlock_reported_in_one_line(self):
        g = SDFGraph()
        g.add_actors("AB")
        g.add_edge("A", "B", 1, 1)
        g.add_edge("B", "A", 1, 1)  # no delay: deadlock
        with pytest.raises(InconsistentGraphError) as exc:
            schedule_cyclic(g)
        assert exc.value.kind == "deadlock"
        assert "\n" not in str(exc.value)
