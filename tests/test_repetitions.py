"""Tests for balance equations and repetitions vectors."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.exceptions import InconsistentGraphError
from repro.sdf.graph import SDFGraph
from repro.sdf.random_graphs import random_sdf_graph
from repro.sdf.repetitions import (
    is_consistent,
    repetitions_vector,
    total_tokens_exchanged,
)


def figure1_graph():
    """Paper figure 1: A -2/1-> B (1 delay), B -1/3-> C."""
    g = SDFGraph("fig1")
    g.add_actors("ABC")
    g.add_edge("A", "B", 2, 1, delay=1)
    g.add_edge("B", "C", 1, 3)
    return g


class TestPaperExamples:
    def test_figure1_repetitions(self):
        assert repetitions_vector(figure1_graph()) == {"A": 3, "B": 6, "C": 2}

    def test_tnse_figure1(self):
        g = figure1_graph()
        q = repetitions_vector(g)
        assert total_tokens_exchanged(g.edge("A", "B"), q) == 6
        assert total_tokens_exchanged(g.edge("B", "C"), q) == 6


class TestBasics:
    def test_single_actor(self):
        g = SDFGraph()
        g.add_actor("A")
        assert repetitions_vector(g) == {"A": 1}

    def test_homogeneous_graph_all_ones(self):
        g = SDFGraph()
        g.add_actors("ABCD")
        g.add_edge("A", "B", 1, 1)
        g.add_edge("B", "C", 1, 1)
        g.add_edge("C", "D", 1, 1)
        assert set(repetitions_vector(g).values()) == {1}

    def test_disconnected_components_normalized_independently(self):
        g = SDFGraph()
        g.add_actors("ABCD")
        g.add_edge("A", "B", 2, 1)
        g.add_edge("C", "D", 3, 1)
        q = repetitions_vector(g)
        assert (q["A"], q["B"]) == (1, 2)
        assert (q["C"], q["D"]) == (1, 3)

    def test_minimality(self):
        g = SDFGraph()
        g.add_actors("AB")
        g.add_edge("A", "B", 4, 6)
        # 4 qA = 6 qB -> minimal (3, 2)
        assert repetitions_vector(g) == {"A": 3, "B": 2}

    def test_delay_does_not_affect_repetitions(self):
        g = SDFGraph()
        g.add_actors("AB")
        g.add_edge("A", "B", 2, 3, delay=100)
        assert repetitions_vector(g) == {"A": 3, "B": 2}


class TestInconsistency:
    def test_rate_inconsistent_cycle(self):
        g = SDFGraph()
        g.add_actors("AB")
        g.add_edge("A", "B", 2, 1)
        g.add_edge("B", "A", 1, 1)
        # qB = 2 qA but return edge forces qA = qB.
        with pytest.raises(InconsistentGraphError) as exc:
            repetitions_vector(g)
        assert exc.value.kind == "rate"

    def test_rate_inconsistent_undirected_cycle(self):
        g = SDFGraph()
        g.add_actors("ABC")
        g.add_edge("A", "B", 2, 1)
        g.add_edge("A", "C", 1, 1)
        g.add_edge("C", "B", 1, 1)
        assert not is_consistent(g)

    def test_parallel_edge_mismatch(self):
        g = SDFGraph()
        g.add_actors("AB")
        g.add_edge("A", "B", 1, 1)
        g.add_edge("A", "B", 2, 1)
        assert not is_consistent(g)

    def test_self_loop_rate_mismatch(self):
        g = SDFGraph()
        g.add_actor("A")
        g.add_edge("A", "A", 2, 1, delay=5)
        with pytest.raises(InconsistentGraphError):
            repetitions_vector(g)

    def test_self_loop_deadlock(self):
        g = SDFGraph()
        g.add_actor("A")
        g.add_edge("A", "A", 3, 3, delay=1)
        with pytest.raises(InconsistentGraphError) as exc:
            repetitions_vector(g)
        assert exc.value.kind == "deadlock"

    def test_self_loop_with_sufficient_delay_ok(self):
        g = SDFGraph()
        g.add_actor("A")
        g.add_edge("A", "A", 2, 2, delay=2)
        assert repetitions_vector(g) == {"A": 1}


class TestBalanceProperty:
    @given(st.integers(min_value=2, max_value=40), st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=40, deadline=None)
    def test_random_graphs_satisfy_balance(self, n, seed):
        g = random_sdf_graph(n, seed=seed)
        q = repetitions_vector(g)
        for e in g.edges():
            assert e.production * q[e.source] == e.consumption * q[e.sink]

    @given(st.integers(min_value=2, max_value=30), st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=30, deadline=None)
    def test_repetitions_minimal(self, n, seed):
        from math import gcd
        g = random_sdf_graph(n, seed=seed)
        q = repetitions_vector(g)
        acc = 0
        for v in q.values():
            acc = gcd(acc, v)
        assert acc == 1


class TestSolveCache:
    """The repetitions solve is memoized on the graph object."""

    def figure1(self):
        g = SDFGraph()
        g.add_actors("ABC")
        g.add_edge("A", "B", 2, 1)
        g.add_edge("B", "C", 1, 3)
        return g

    def test_cache_populated_and_reused(self):
        g = self.figure1()
        assert g._q_cache is None
        q1 = repetitions_vector(g)
        assert g._q_cache == q1
        # Second call returns the cached solution (same value, and the
        # solver is not consulted: poisoning the cache shows up).
        g._q_cache = {"A": 30, "B": 60, "C": 20}
        assert repetitions_vector(g) == {"A": 30, "B": 60, "C": 20}

    def test_returned_dict_is_a_copy(self):
        g = self.figure1()
        q1 = repetitions_vector(g)
        q1["A"] = 999
        assert repetitions_vector(g)["A"] == 3

    def test_add_edge_invalidates(self):
        g = self.figure1()
        assert repetitions_vector(g) == {"A": 3, "B": 6, "C": 2}
        g.add_edge("C", "A", 1, 1, delay=10)  # q must now equalize A and C
        assert g._q_cache is None
        with pytest.raises(InconsistentGraphError):
            repetitions_vector(g)

    def test_add_actor_invalidates(self):
        g = self.figure1()
        repetitions_vector(g)
        g.add_actor("D")
        assert g._q_cache is None
        assert repetitions_vector(g)["D"] == 1

    def test_inconsistent_graph_never_cached(self):
        g = SDFGraph()
        g.add_actors("AB")
        g.add_edge("A", "B", 2, 1)
        g.add_edge("A", "B", 1, 1)
        for _ in range(2):
            with pytest.raises(InconsistentGraphError):
                repetitions_vector(g)
        assert g._q_cache is None
