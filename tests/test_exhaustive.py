"""Tests for the exact optimal-SAS search and optimality-gap harness."""

import pytest

from repro.exceptions import GraphStructureError
from repro.sdf.graph import SDFGraph
from repro.sdf.random_graphs import random_sdf_graph
from repro.sdf.simulate import buffer_memory_nonshared, validate_schedule
from repro.scheduling.dppo import dppo
from repro.scheduling.exhaustive import optimal_sas
from repro.experiments.optimality_gap import format_gap, run_optimality_gap


class TestOptimalSAS:
    def test_unique_sort_equals_dppo(self):
        g = SDFGraph()
        g.add_actors("ABC")
        g.add_edge("A", "B", 2, 1)
        g.add_edge("B", "C", 1, 3)
        exact = optimal_sas(g)
        assert exact.sorts_examined == 1
        assert exact.cost == dppo(g, ["A", "B", "C"]).cost

    def test_schedule_is_valid_and_costed(self):
        g = random_sdf_graph(6, seed=11)
        exact = optimal_sas(g)
        validate_schedule(g, exact.schedule)
        assert exact.cost == buffer_memory_nonshared(g, exact.schedule)

    @pytest.mark.parametrize("seed", range(5))
    def test_no_single_sort_beats_it(self, seed):
        from repro.sdf.topsort import all_topological_sorts
        g = random_sdf_graph(6, seed=seed)
        exact = optimal_sas(g)
        for order in all_topological_sorts(g):
            assert dppo(g, order).cost >= exact.cost

    def test_shared_objective(self):
        g = random_sdf_graph(5, seed=3)
        exact = optimal_sas(g, objective="shared")
        assert exact.objective == "shared"
        assert exact.cost >= 0
        validate_schedule(g, exact.schedule)

    def test_unknown_objective(self):
        g = random_sdf_graph(4, seed=0)
        with pytest.raises(GraphStructureError):
            optimal_sas(g, objective="bogus")

    def test_too_many_sorts_rejected(self):
        g = SDFGraph()
        g.add_actors([f"n{i}" for i in range(10)])  # 10! sorts
        with pytest.raises(GraphStructureError):
            optimal_sas(g, max_sorts=100)


class TestOptimalityGap:
    def test_gaps_non_negative(self):
        rows = run_optimality_gap(seeds=range(5), num_actors=6)
        assert rows
        for r in rows:
            assert r.rpmc >= r.optimal
            assert r.apgan >= r.optimal

    def test_apgan_nonshared_optimality_class(self):
        """APGAN provably minimizes the non-shared metric for a broad
        class of graphs [3]; it should hit the optimum on most small
        random graphs."""
        rows = run_optimality_gap(
            seeds=range(8), num_actors=7, objective="nonshared"
        )
        optimal_hits = sum(1 for r in rows if r.apgan == r.optimal)
        assert optimal_hits >= len(rows) // 2

    def test_formatting(self):
        rows = run_optimality_gap(seeds=range(3), num_actors=5)
        text = format_gap(rows)
        assert "mean gaps" in text
        assert "optimal on" in text

    def test_empty_rows_formatting(self):
        assert "no graphs" in format_gap([])
