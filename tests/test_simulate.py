"""Tests for schedule interpretation and token simulation."""

import pytest

from repro.exceptions import InconsistentGraphError, ScheduleError
from repro.sdf.graph import SDFGraph
from repro.sdf.schedule import parse_schedule
from repro.sdf.simulate import (
    assert_deadlock_free,
    buffer_memory_nonshared,
    coarse_live_intervals,
    has_valid_schedule,
    is_valid_schedule,
    max_live_tokens,
    max_tokens,
    simulate_schedule,
    validate_schedule,
)


def figure1_graph():
    g = SDFGraph("fig1")
    g.add_actors("ABC")
    g.add_edge("A", "B", 2, 1, delay=1)
    g.add_edge("B", "C", 1, 3)
    return g


def delayless_fig1():
    g = SDFGraph()
    g.add_actors("ABC")
    g.add_edge("A", "B", 2, 1)
    g.add_edge("B", "C", 1, 3)
    return g


class TestPaperSection4:
    """max_tokens / bufmem values stated in section 4."""

    def test_s1_max_tokens(self):
        g = figure1_graph()
        s1 = parse_schedule("(3A)(6B)(2C)")
        assert max_tokens(g, s1)[("A", "B", 0)] == 7
        assert max_tokens(g, s1)[("B", "C", 0)] == 6

    def test_s2_max_tokens(self):
        g = figure1_graph()
        s2 = parse_schedule("(3A(2B))(2C)")
        assert max_tokens(g, s2)[("A", "B", 0)] == 3

    def test_bufmem_values(self):
        g = figure1_graph()
        assert buffer_memory_nonshared(g, parse_schedule("(3A)(6B)(2C)")) == 13
        assert buffer_memory_nonshared(g, parse_schedule("(3A(2B))(2C)")) == 9

    def test_token_size_scales_bufmem(self):
        g = SDFGraph()
        g.add_actors("AB")
        g.add_edge("A", "B", 2, 1, token_size=5)
        s = parse_schedule("A(2B)")
        assert buffer_memory_nonshared(g, s) == 10


class TestValidity:
    def test_valid_schedule_accepted(self):
        g = figure1_graph()
        counts = validate_schedule(g, parse_schedule("(3A)(6B)(2C)"))
        assert counts == {"A": 3, "B": 6, "C": 2}

    def test_multiple_periods_accepted(self):
        g = figure1_graph()
        validate_schedule(g, parse_schedule("(6A)(12B)(4C)"))

    def test_wrong_counts_rejected(self):
        g = figure1_graph()
        with pytest.raises(ScheduleError):
            validate_schedule(g, parse_schedule("(3A)(6B)(3C)"))

    def test_non_uniform_periods_rejected(self):
        g = figure1_graph()
        with pytest.raises(ScheduleError):
            validate_schedule(g, parse_schedule("(6A)(6B)(2C)"))

    def test_missing_actor_rejected(self):
        g = figure1_graph()
        with pytest.raises(ScheduleError):
            validate_schedule(g, parse_schedule("(3A)(6B)"))

    def test_unknown_actor_rejected(self):
        g = figure1_graph()
        with pytest.raises(ScheduleError):
            validate_schedule(g, parse_schedule("(3A)(6B)(2C)Z"))

    def test_negative_tokens_rejected(self):
        g = delayless_fig1()
        # C before B ever fires: starved.
        assert not is_valid_schedule(g, parse_schedule("(2C)(3A)(6B)"))

    def test_delay_enables_early_firing(self):
        g = SDFGraph()
        g.add_actors("AB")
        g.add_edge("A", "B", 1, 1, delay=1)
        # B can fire first using the initial token.
        assert is_valid_schedule(g, parse_schedule("B A"))


class TestTrace:
    def test_trace_records_every_state(self):
        g = delayless_fig1()
        s = parse_schedule("(3A)(6B)(2C)")
        trace = simulate_schedule(g, s)
        assert len(trace.firings) == 11
        assert len(trace.counts) == 12
        assert trace.peak(("A", "B", 0)) == 6

    def test_total_peak(self):
        g = delayless_fig1()
        s = parse_schedule("(3A)(6B)(2C)")
        # After 3A: 6 on AB; after 6B: 6 on BC.  Peak total is 6 + partial.
        trace = simulate_schedule(g, s)
        assert trace.total_peak() >= 6


class TestCoarseIntervals:
    def test_chain_each_edge_single_episode_flat(self):
        g = delayless_fig1()
        s = parse_schedule("(3A)(6B)(2C)")
        intervals = coarse_live_intervals(g, s)
        assert len(intervals[("A", "B", 0)]) == 1
        assert len(intervals[("B", "C", 0)]) == 1
        # AB live from after A's first firing (0) until B's last (9).
        assert intervals[("A", "B", 0)] == [(0, 9)]

    def test_nested_schedule_multiple_episodes(self):
        g = delayless_fig1()
        s = parse_schedule("(3A(2B))(2C)")
        intervals = coarse_live_intervals(g, s)
        assert len(intervals[("A", "B", 0)]) == 3  # empties per outer loop

    def test_delayed_edge_live_at_start(self):
        g = SDFGraph()
        g.add_actors("AB")
        g.add_edge("A", "B", 1, 1, delay=2)
        s = parse_schedule("A B A B")  # wait: needs q multiples
        intervals = coarse_live_intervals(g, s)
        assert intervals[("A", "B", 0)][0][0] == 0

    def test_max_live_tokens_flat_vs_nested(self):
        g = delayless_fig1()
        flat = max_live_tokens(g, parse_schedule("(3A)(6B)(2C)"))
        nested = max_live_tokens(g, parse_schedule("(3A(2B))(2C)"))
        assert nested <= flat


class TestDeadlock:
    def test_acyclic_always_deadlock_free(self):
        assert has_valid_schedule(delayless_fig1())

    def test_cycle_without_delay_deadlocks(self):
        g = SDFGraph()
        g.add_actors("AB")
        g.add_edge("A", "B", 1, 1)
        g.add_edge("B", "A", 1, 1)
        with pytest.raises(InconsistentGraphError) as exc:
            assert_deadlock_free(g)
        assert exc.value.kind == "deadlock"

    def test_cycle_with_delay_schedulable(self):
        g = SDFGraph()
        g.add_actors("AB")
        g.add_edge("A", "B", 1, 1)
        g.add_edge("B", "A", 1, 1, delay=1)
        schedule = assert_deadlock_free(g)
        assert is_valid_schedule(g, schedule)

    def test_constructed_schedule_is_valid(self):
        g = figure1_graph()
        schedule = assert_deadlock_free(g)
        validate_schedule(g, schedule)

    def test_insufficient_cycle_delay(self):
        g = SDFGraph()
        g.add_actors("AB")
        g.add_edge("A", "B", 2, 2)
        g.add_edge("B", "A", 2, 2, delay=1)
        assert not has_valid_schedule(g)
