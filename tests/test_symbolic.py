"""The loop-compressed symbolic engine vs the firing interpreter.

The symbolic backend (``repro.sdf.symbolic``) claims bit-identical
results on delayless, self-loop-free graphs under full topological
single appearance schedules, in time independent of the firing count.
These tests pin the closed forms on worked examples, sweep 200+ seeded
random graphs differentially against the interpreter, verify every
fallback path, and exercise the firing-time clock the schedule tree
grew for the engine.
"""

import random

import pytest

from repro.exceptions import ScheduleError
from repro.lifetimes.periodic import PeriodicLifetime
from repro.lifetimes.schedule_tree import ScheduleTree
from repro.scheduling.dppo import dppo
from repro.scheduling.sdppo import sdppo
from repro.sdf.graph import SDFGraph
from repro.sdf.random_graphs import random_chain_graph, random_sdf_graph
from repro.sdf.repetitions import repetitions_vector
from repro.sdf.schedule import (
    flat_single_appearance_schedule,
    parse_schedule,
)
from repro.sdf.simulate import (
    coarse_live_intervals,
    max_live_tokens,
    max_tokens,
    validate_schedule,
)
from repro.sdf.symbolic import SymbolicTrace


def two_actor_graph():
    g = SDFGraph()
    g.add_actors("AB")
    g.add_edge("A", "B", production=2, consumption=1)
    return g


class TestClosedForms:
    """Worked examples with hand-derived expected values."""

    def test_single_loop_pair(self):
        g = two_actor_graph()
        s = parse_schedule("(2A(2B))")
        trace = SymbolicTrace.try_build(g, s)
        assert trace is not None
        key = ("A", "B", 0)
        assert trace.max_tokens() == {key: 2}
        assert trace.coarse_live_intervals() == {key: [(0, 3), (3, 6)]}
        assert trace.max_live_tokens() == 2

    def test_nested_sink_loops(self):
        # (2A(2B(2C))): the consumer C of edge A->C sits two loops deep,
        # so the episode stop needs the between-loop last-iteration
        # offsets.  Firing sequence A B C C B C C | ... : the A->C
        # episode runs from firing 0 to C's fourth firing at index 7.
        g = SDFGraph()
        g.add_actors("ABC")
        g.add_edge("A", "B", 2, 1)
        g.add_edge("B", "C", 2, 1)
        g.add_edge("A", "C", 4, 1)
        s = parse_schedule("(2A(2B(2C)))")
        trace = SymbolicTrace.try_build(g, s)
        assert trace is not None
        assert trace.coarse_live_intervals()[("A", "C", 0)] == [(0, 7), (7, 14)]
        assert trace.coarse_live_intervals()[("B", "C", 0)] == [
            (1, 4), (4, 7), (8, 11), (11, 14),
        ]
        assert trace.max_tokens() == {
            ("A", "B", 0): 2, ("B", "C", 0): 2, ("A", "C", 0): 4,
        }
        # A->C's 4-word array is live the whole period; the A->B episode
        # (2 words) and one B->C episode (2 words) stack on top of it.
        assert trace.max_live_tokens() == 8
        assert max_live_tokens(g, s, backend="interpreter") == 8

    def test_token_sizes_scale_words_not_peaks(self):
        g = SDFGraph()
        g.add_actors("AB")
        g.add_edge("A", "B", 2, 1, token_size=5)
        s = parse_schedule("(2A(2B))")
        trace = SymbolicTrace.try_build(g, s)
        assert trace.max_tokens() == {("A", "B", 0): 2}  # tokens
        assert trace.max_live_tokens() == 10  # words

    def test_episode_lifetime_is_periodic(self):
        g = two_actor_graph()
        trace = SymbolicTrace.try_build(g, parse_schedule("(2A(2B))"))
        lt = trace.edge_lifetime(("A", "B", 0))
        assert isinstance(lt, PeriodicLifetime)
        assert (lt.start, lt.duration) == (0, 3)
        assert lt.periods == ((3, 2),)
        assert lt.total_span == 6


class TestSupportGate:
    """Everything outside the closed forms must decline to build."""

    def test_delay_declines(self):
        g = SDFGraph()
        g.add_actors("AB")
        g.add_edge("A", "B", 2, 1, delay=1)
        assert SymbolicTrace.try_build(g, parse_schedule("(2A(2B))")) is None

    def test_self_loop_declines(self):
        g = two_actor_graph()
        g.add_edge("B", "B", 1, 1, delay=1)
        assert SymbolicTrace.try_build(g, parse_schedule("(2A(2B))")) is None

    def test_non_single_appearance_declines(self):
        g = two_actor_graph()
        s = parse_schedule("A B A B")
        assert not s.is_single_appearance()
        assert SymbolicTrace.try_build(g, s) is None

    def test_partial_schedule_declines(self):
        # (1A)(1B) on A-2/1->B: both actors appear, but firing counts
        # are unbalanced; the naive peak formula would report 2 where
        # the interpreter (correctly) rejects the schedule.
        g = two_actor_graph()
        assert SymbolicTrace.try_build(g, parse_schedule("A B")) is None

    def test_non_topological_order_declines(self):
        g = two_actor_graph()
        assert SymbolicTrace.try_build(g, parse_schedule("(4B)(2A)")) is None

    def test_missing_actor_declines(self):
        g = two_actor_graph()
        g.add_actor("C")
        assert SymbolicTrace.try_build(g, parse_schedule("(2A(2B))")) is None


class TestBackendDispatch:
    def test_unknown_backend_rejected(self):
        g = two_actor_graph()
        s = parse_schedule("(2A(2B))")
        with pytest.raises(ValueError, match="unknown backend"):
            max_tokens(g, s, backend="vm")

    def test_forced_symbolic_raises_on_unsupported(self):
        g = SDFGraph()
        g.add_actors("AB")
        g.add_edge("A", "B", 2, 1, delay=1)
        s = parse_schedule("(2A(2B))")
        with pytest.raises(ScheduleError, match="symbolic backend"):
            max_live_tokens(g, s, backend="symbolic")

    def test_auto_falls_back_on_delay(self):
        g = SDFGraph()
        g.add_actors("AB")
        g.add_edge("A", "B", 2, 1, delay=1)
        s = parse_schedule("(2A(2B))")
        assert max_tokens(g, s) == max_tokens(g, s, backend="interpreter")

    def test_auto_falls_back_on_invalid_schedule(self):
        # Non-topological SAS: the symbolic gate declines, and the
        # interpreter's underflow error must surface unchanged.
        g = two_actor_graph()
        s = parse_schedule("(4B)(2A)")
        with pytest.raises(ScheduleError, match="tokens"):
            max_tokens(g, s)

    def test_validate_schedule_counts_identical(self):
        g = two_actor_graph()
        s = parse_schedule("(2A(2B))")
        assert validate_schedule(g, s, backend="symbolic") == \
            validate_schedule(g, s, backend="interpreter") == {"A": 2, "B": 4}

    def test_validate_still_rejects_bad_counts_first(self):
        g = two_actor_graph()
        with pytest.raises(ScheduleError, match="multiple"):
            validate_schedule(g, parse_schedule("(2A)(3B)"), backend="auto")


def _assert_backends_agree(graph, schedule):
    """One differential trial: every observable, bit for bit."""
    assert SymbolicTrace.try_build(graph, schedule) is not None, (
        f"expected symbolic support for {schedule}"
    )
    for fn in (max_tokens, coarse_live_intervals, max_live_tokens,
               validate_schedule):
        sym = fn(graph, schedule, backend="symbolic")
        itp = fn(graph, schedule, backend="interpreter")
        assert sym == itp, (
            f"{fn.__name__} disagrees on {graph.name}, {schedule}: "
            f"{sym} != {itp}"
        )


class TestDifferentialSweep:
    """≥200 seeded trials: random delayless SAS graphs, three schedule
    shapes each (flat, DPPO, SDPPO), symbolic vs interpreter."""

    def test_random_graphs(self):
        trials = 0
        for seed in range(70):
            rng = random.Random(seed)
            graph = random_sdf_graph(
                rng.randint(2, 8), seed=seed, max_repetition=6
            )
            q = repetitions_vector(graph)
            order = graph.topological_order()
            schedules = [flat_single_appearance_schedule(order, q)]
            if len(order) >= 2:
                schedules.append(dppo(graph, order, q).schedule)
                schedules.append(sdppo(graph, order, q).schedule)
            for schedule in schedules:
                _assert_backends_agree(graph, schedule)
                trials += 1
        assert trials >= 200

    def test_random_chains(self):
        for seed in range(20):
            graph = random_chain_graph(5, seed=seed)
            q = repetitions_vector(graph)
            order = graph.topological_order()
            _assert_backends_agree(
                graph, sdppo(graph, order, q).schedule
            )

    def test_blocked_schedules(self):
        # Counts that are a uniform multiple of q (blocking factor 3).
        g = two_actor_graph()
        _assert_backends_agree(g, parse_schedule("(6A(2B))"))


class TestHighRateScaling:
    """The whole point: cost independent of the repetitions vector."""

    def test_matches_interpreter_at_moderate_scale(self):
        s = 1000
        g = SDFGraph()
        g.add_actors("ABC")
        g.add_edge("A", "B", s, 1)
        g.add_edge("B", "C", 1, s)
        _assert_backends_agree(g, parse_schedule(f"A({s}B)C"))

    def test_closed_form_at_extreme_scale(self):
        # 2e12 firings per period: the interpreter could never run this;
        # the symbolic answers follow from the closed forms directly.
        s = 10 ** 12
        g = SDFGraph()
        g.add_actors("ABC")
        g.add_edge("A", "B", s, 1)
        g.add_edge("B", "C", 1, s)
        schedule = parse_schedule(f"A({s}B)C")
        assert max_tokens(g, schedule, backend="symbolic") == {
            ("A", "B", 0): s, ("B", "C", 0): s,
        }
        assert max_live_tokens(g, schedule, backend="symbolic") == 2 * s
        assert validate_schedule(g, schedule, backend="symbolic") == {
            "A": 1, "B": s, "C": 1,
        }


class TestFiringClock:
    """The schedule tree's second clock (fdur/fstart/body_firings)."""

    def test_fdur_counts_firings_not_invocations(self):
        tree = ScheduleTree(parse_schedule("(2A(3B))"))
        assert tree.total_duration() == 4   # schedule-step clock
        assert tree.total_firings() == 8    # 2 * (1 + 3)
        assert tree.leaf("B").fdur == 3
        assert tree.leaf("B").fstart == 1
        assert tree.root.body_firings() == 4

    def test_leaf_body_firings_is_residual(self):
        tree = ScheduleTree(parse_schedule("(4A)(6B)"))
        assert tree.leaf("A").body_firings() == 4
        assert tree.leaf("B").fstart == 4
        assert tree.total_firings() == 10


class TestFromBasis:
    def test_drops_unit_loops_and_sorts(self):
        lt = PeriodicLifetime.from_basis(
            "x", size=1, start=0, duration=2,
            basis=[(9, 2), (1, 1), (3, 3)],
        )
        assert lt.periods == ((3, 3), (9, 2))

    def test_empty_after_unit_drop(self):
        lt = PeriodicLifetime.from_basis(
            "x", size=1, start=5, duration=2, basis=[(7, 1)],
        )
        assert lt.periods == ()
        assert list(lt.intervals()) == [(5, 7)]
