"""Determinism guarantees: identical inputs produce identical results.

Every number in EXPERIMENTS.md relies on the flow being a pure function
of (graph, seed); these tests pin that property so a future change that
introduces hidden iteration-order or randomness dependence fails loudly.
"""

import pytest

from repro.sdf.random_graphs import random_sdf_graph
from repro.scheduling.pipeline import implement, implement_best
from repro.baselines.random_search import random_search
from repro.apps import table1_graph


class TestFlowDeterminism:
    @pytest.mark.parametrize("method", ["rpmc", "apgan", "natural"])
    def test_implement_reproducible(self, method):
        g1 = table1_graph("16qamModem")
        g2 = table1_graph("16qamModem")
        r1 = implement(g1, method, seed=3)
        r2 = implement(g2, method, seed=3)
        assert r1.order == r2.order
        assert str(r1.sdppo_schedule) == str(r2.sdppo_schedule)
        assert r1.allocation.offsets == r2.allocation.offsets
        assert (r1.dppo_cost, r1.mco, r1.mcp) == (r2.dppo_cost, r2.mco, r2.mcp)

    def test_best_result_reproducible(self):
        a = implement_best(table1_graph("satrec"))
        b = implement_best(table1_graph("satrec"))
        assert a.best_shared == b.best_shared
        assert a.best_nonshared == b.best_nonshared
        assert a.rpmc.order == b.rpmc.order

    def test_random_graph_flow_reproducible(self):
        for seed in (0, 17):
            g1 = random_sdf_graph(20, seed=seed)
            g2 = random_sdf_graph(20, seed=seed)
            r1 = implement(g1, "rpmc", seed=seed, verify=False)
            r2 = implement(g2, "rpmc", seed=seed, verify=False)
            assert r1.allocation.offsets == r2.allocation.offsets

    def test_random_search_reproducible(self):
        g = table1_graph("4pamxmitrec")
        s1 = random_search(g, trials=8, seed=5)
        s2 = random_search(g, trials=8, seed=5)
        assert s1.best_by_trial == s2.best_by_trial
        assert s1.best_order == s2.best_order

    def test_different_seeds_can_differ(self):
        g = table1_graph("4pamxmitrec")
        s1 = random_search(g, trials=8, seed=5)
        s2 = random_search(g, trials=8, seed=6)
        # The orders explored differ (totals may coincide on tiny graphs).
        assert s1.best_order == s1.best_order
        assert isinstance(s2.best_total, int)
