"""Determinism guarantees: identical inputs produce identical results.

Every number in EXPERIMENTS.md relies on the flow being a pure function
of (graph, seed); these tests pin that property so a future change that
introduces hidden iteration-order or randomness dependence fails loudly.
"""

import pytest

from repro.sdf.random_graphs import random_sdf_graph
from repro.scheduling.pipeline import implement, implement_best
from repro.scheduling.session import CompilationSession
from repro.baselines.random_search import random_search
from repro.experiments.random_graphs import run_random_graph_experiment
from repro.experiments.runner import effective_jobs, parallel_map
from repro.apps import table1_graph


class TestFlowDeterminism:
    @pytest.mark.parametrize("method", ["rpmc", "apgan", "natural"])
    def test_implement_reproducible(self, method):
        g1 = table1_graph("16qamModem")
        g2 = table1_graph("16qamModem")
        r1 = implement(g1, method, seed=3)
        r2 = implement(g2, method, seed=3)
        assert r1.order == r2.order
        assert str(r1.sdppo_schedule) == str(r2.sdppo_schedule)
        assert r1.allocation.offsets == r2.allocation.offsets
        assert (r1.dppo_cost, r1.mco, r1.mcp) == (r2.dppo_cost, r2.mco, r2.mcp)

    def test_best_result_reproducible(self):
        a = implement_best(table1_graph("satrec"))
        b = implement_best(table1_graph("satrec"))
        assert a.best_shared == b.best_shared
        assert a.best_nonshared == b.best_nonshared
        assert a.rpmc.order == b.rpmc.order

    def test_random_graph_flow_reproducible(self):
        for seed in (0, 17):
            g1 = random_sdf_graph(20, seed=seed)
            g2 = random_sdf_graph(20, seed=seed)
            r1 = implement(g1, "rpmc", seed=seed, verify=False)
            r2 = implement(g2, "rpmc", seed=seed, verify=False)
            assert r1.allocation.offsets == r2.allocation.offsets

    def test_random_search_reproducible(self):
        g = table1_graph("4pamxmitrec")
        s1 = random_search(g, trials=8, seed=5)
        s2 = random_search(g, trials=8, seed=5)
        assert s1.best_by_trial == s2.best_by_trial
        assert s1.best_order == s2.best_order

    def test_different_seeds_can_differ(self):
        g = table1_graph("4pamxmitrec")
        s1 = random_search(g, trials=8, seed=5)
        s2 = random_search(g, trials=8, seed=6)
        # The orders explored differ (totals may coincide on tiny graphs).
        assert s1.best_order == s1.best_order
        assert isinstance(s2.best_total, int)

    def test_session_reuse_matches_fresh(self):
        g = table1_graph("satrec")
        session = CompilationSession(g)
        fresh = implement_best(g)
        reused = implement_best(g, session=session)
        again = implement_best(g, session=session)
        assert fresh.best_shared == reused.best_shared == again.best_shared
        assert fresh.rpmc.order == reused.rpmc.order == again.rpmc.order
        assert fresh.rpmc.allocation.offsets == reused.rpmc.allocation.offsets
        assert fresh.apgan.bmlb == reused.apgan.bmlb


class TestParallelSerialIdentity:
    """The process-pool paths must be bit-identical to the serial ones."""

    def test_random_search_parallel_matches_serial(self):
        g = table1_graph("satrec")
        serial = random_search(g, trials=24, seed=11, jobs=1)
        parallel = random_search(g, trials=24, seed=11, jobs=2)
        assert serial == parallel

    def test_fig27_parallel_matches_serial(self):
        serial = run_random_graph_experiment(
            sizes=(20,), graphs_per_size=4, seed=2, jobs=1
        )
        parallel = run_random_graph_experiment(
            sizes=(20,), graphs_per_size=4, seed=2, jobs=2
        )
        assert serial == parallel

    def test_parallel_map_preserves_order(self):
        tasks = list(range(23))
        assert parallel_map(_negate, tasks, jobs=3) == [-t for t in tasks]
        assert parallel_map(_negate, tasks, jobs=1) == [-t for t in tasks]

    def test_effective_jobs_env(self, monkeypatch):
        monkeypatch.delenv("REPRO_JOBS", raising=False)
        assert effective_jobs() == 1
        monkeypatch.setenv("REPRO_JOBS", "3")
        assert effective_jobs() == 3
        monkeypatch.setenv("REPRO_JOBS", "0")
        assert effective_jobs() >= 1
        monkeypatch.setenv("REPRO_JOBS", "lots")
        with pytest.raises(ValueError):
            effective_jobs()
        # An explicit argument wins over the environment.
        monkeypatch.setenv("REPRO_JOBS", "7")
        assert effective_jobs(2) == 2

    def test_effective_jobs_rejects_negative(self, monkeypatch):
        # Negative counts are configuration errors, not "serial please";
        # both the argument and environment forms must refuse them.
        with pytest.raises(ValueError):
            effective_jobs(-1)
        with pytest.raises(ValueError):
            effective_jobs(-17)
        monkeypatch.setenv("REPRO_JOBS", "-2")
        with pytest.raises(ValueError):
            effective_jobs()


def _negate(x):
    return -x


class TestVectorizedDPEquivalence:
    """The numpy DP path must match the pure-Python DP bit for bit."""

    def _cases(self):
        for name in ("satrec", "qmf12_3d", "16qamModem"):
            yield name, table1_graph(name)
        for size in (12, 30, 50):
            for seed in (0, 7):
                yield f"rand{size}_{seed}", random_sdf_graph(size, seed=seed)

    def test_numpy_matches_pure_python(self):
        pytest.importorskip("numpy")
        from repro.scheduling.common import ChainContext
        from repro.scheduling.dppo import dppo
        from repro.scheduling.sdppo import sdppo
        from repro.sdf.repetitions import repetitions_vector

        for name, graph in self._cases():
            q = repetitions_vector(graph)
            order = graph.topological_order()
            fast = ChainContext(graph, order, q, trusted=True)
            slow = ChainContext(graph, order, q, trusted=True)
            fast.use_numpy = True
            slow.use_numpy = False
            d_fast = dppo(graph, order, q, context=fast)
            d_slow = dppo(graph, order, q, context=slow)
            assert d_fast.cost == d_slow.cost, name
            assert d_fast.b == d_slow.b, name
            assert str(d_fast.schedule) == str(d_slow.schedule), name
            for factoring in ("auto", "always", "never"):
                s_fast = sdppo(
                    graph, order, q, factoring=factoring, context=fast
                )
                s_slow = sdppo(
                    graph, order, q, factoring=factoring, context=slow
                )
                assert s_fast.cost == s_slow.cost, (name, factoring)
                assert s_fast.b == s_slow.b, (name, factoring)
                assert s_fast.factored == s_slow.factored, (name, factoring)
                assert str(s_fast.schedule) == str(s_slow.schedule), (
                    name,
                    factoring,
                )
