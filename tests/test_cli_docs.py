"""``docs/cli.md`` cannot silently rot.

The reference doc is checked *structurally* against ``build_parser()``:
every subcommand must have its own ``## repro <command>`` section, and
every flag and positional argument of that subcommand must be
mentioned inside that section.  Adding a flag without documenting it —
or renaming one and leaving the old doc text — fails this test.
"""

import argparse
import os
import re

import pytest

from repro.cli import build_parser

DOC_PATH = os.path.join(
    os.path.dirname(__file__), "..", "docs", "cli.md"
)


def load_doc() -> str:
    with open(DOC_PATH, encoding="utf-8") as handle:
        return handle.read()


def subparsers_of(parser: argparse.ArgumentParser):
    """The name -> subparser mapping, or {} when there are none."""
    for action in parser._actions:
        if isinstance(action, argparse._SubParsersAction):
            return dict(action.choices)
    return {}


def iter_commands():
    """Yield ("compile", parser) and nested ("cache stats", parser)."""
    for name, sub in subparsers_of(build_parser()).items():
        nested = subparsers_of(sub)
        if nested:
            for inner_name, inner in nested.items():
                yield f"{name} {inner_name}", inner
        else:
            yield name, sub


def section_for(doc: str, command: str) -> str:
    """The doc text belonging to ``command``'s ``##`` section.

    Nested commands (``cache stats``) fall under their parent's
    ``## repro cache`` section.
    """
    top = command.split()[0]
    heading = f"## `repro {top}`"
    start = doc.find(heading)
    if start < 0:
        return ""
    match = re.search(r"\n## ", doc[start + len(heading):])
    end = (
        start + len(heading) + match.start()
        if match else len(doc)
    )
    return doc[start:end]


def documented_arguments(parser: argparse.ArgumentParser):
    """(kind, token) pairs the doc must mention for this parser."""
    for action in parser._actions:
        if isinstance(
            action,
            (argparse._HelpAction, argparse._SubParsersAction),
        ):
            continue
        if action.option_strings:
            for option in action.option_strings:
                if option.startswith("--"):
                    yield "flag", option
        else:
            yield "positional", (action.metavar or action.dest)


def test_doc_exists():
    assert os.path.isfile(DOC_PATH), "docs/cli.md is missing"


@pytest.mark.parametrize(
    "command,parser", list(iter_commands()), ids=lambda v: str(v)[:40]
)
def test_command_documented(command, parser):
    doc = load_doc()
    top = command.split()[0]
    assert f"## `repro {top}`" in doc, (
        f"docs/cli.md lacks a '## `repro {top}`' section"
    )
    section = section_for(doc, command)
    if " " in command:  # nested, e.g. `repro cache stats`
        assert f"repro {command}" in section, (
            f"'repro {command}' not described under '## `repro {top}`'"
        )
    missing = [
        (kind, token)
        for kind, token in documented_arguments(parser)
        if token not in section
    ]
    assert not missing, (
        f"docs/cli.md section for 'repro {command}' does not mention: "
        + ", ".join(f"{kind} {token!r}" for kind, token in missing)
    )


def test_every_section_is_a_real_command():
    """The doc may not describe subcommands that no longer exist."""
    doc = load_doc()
    known = {name for name, _ in iter_commands()}
    known |= {name.split()[0] for name in known}
    for match in re.finditer(r"^## `repro ([a-z0-9-]+)`", doc, re.M):
        assert match.group(1) in known, (
            f"docs/cli.md documents unknown subcommand "
            f"{match.group(1)!r}"
        )


def test_exit_codes_documented():
    assert "Exit codes" in load_doc()
