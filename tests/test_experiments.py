"""Tests for the experiment harnesses (paper evaluation section)."""

import pytest

from repro.experiments.table1 import (
    PAPER_REFERENCE,
    Table1Row,
    format_table1,
    run_table1,
)
from repro.experiments.fig25 import format_fig25, improvement_series
from repro.experiments.random_graphs import (
    format_fig27,
    run_random_graph_experiment,
)
from repro.experiments.homogeneous_exp import (
    format_fig26,
    run_homogeneous_experiment,
)
from repro.experiments.satrec_comparison import format_satrec, run_satrec_comparison
from repro.experiments.cddat_io import input_buffering, run_cddat_io

QUICK_SYSTEMS = ["qmf23_2d", "satrec", "16qamModem", "overAddFFT"]


@pytest.fixture(scope="module")
def quick_rows():
    return run_table1(QUICK_SYSTEMS)


class TestTable1:
    def test_rows_complete(self, quick_rows):
        assert [r.system for r in quick_rows] == QUICK_SYSTEMS
        for r in quick_rows:
            assert r.best_shared <= r.best_nonshared
            assert r.dppo_r >= r.bmlb
            assert r.mco_r <= r.mcp_r
            assert r.mco_a <= r.mcp_a

    def test_improvement_band(self, quick_rows):
        """The paper's headline: improvements average > 50% with every
        practical system at >= 31%."""
        avg = sum(r.improvement for r in quick_rows) / len(quick_rows)
        assert avg >= 40.0
        for r in quick_rows:
            assert r.improvement >= 25.0, r.system

    def test_formatting(self, quick_rows):
        text = format_table1(quick_rows)
        assert "qmf23_2d" in text
        assert "average improvement" in text
        assert "%" in text

    def test_reference_values_recorded(self):
        assert PAPER_REFERENCE["qmf23_2d"]["dppo_r"] == 60
        assert PAPER_REFERENCE["satrec"]["shared_best"] == 991


class TestFig25:
    def test_series_matches_rows(self, quick_rows):
        series = improvement_series(quick_rows)
        assert [s for s, _ in series] == QUICK_SYSTEMS
        for (_, v), r in zip(series, quick_rows):
            assert v == r.improvement

    def test_chart_renders(self, quick_rows):
        text = format_fig25(improvement_series(quick_rows))
        assert "#" in text
        assert "average" in text


class TestFig26:
    def test_suite_achieves_m_plus_one(self):
        """Section 10.2: the complete suite allocates exactly M + 1."""
        for r in run_homogeneous_experiment(points=((2, 3), (3, 4), (5, 5))):
            assert r.suite_allocation == r.lower_bound
            assert r.depth_first_allocation == r.lower_bound
            assert r.nonshared == r.m * (r.n - 1) + 2 * r.m

    def test_vector_tokens_scale(self):
        for r in run_homogeneous_experiment(points=((3, 4),), token_size=16):
            assert r.suite_allocation == 4 * 16
            assert r.nonshared == (3 * 3 + 6) * 16

    def test_formatting(self):
        text = format_fig26(run_homogeneous_experiment(points=((2, 2),)))
        assert "M+1" in text or "bound" in text


class TestFig27:
    def test_small_sweep_shapes(self):
        stats = run_random_graph_experiment(
            sizes=(15, 30), graphs_per_size=6, seed=2
        )
        assert len(stats) == 2
        for s in stats:
            assert s.num_graphs == 6
            # Sharing always helps on these sparse graphs.
            assert s.improvement_pct > 0
            # Allocation sits at or above its optimistic bound.
            assert s.alloc_over_mco_pct >= 0
            assert 0.0 <= s.rpmc_wins_fraction <= 1.0

    def test_formatting(self):
        stats = run_random_graph_experiment(sizes=(10,), graphs_per_size=3)
        text = format_fig27(stats)
        assert "(a)" in text and "(f)" in text


class TestSatrecComparison:
    def test_shapes(self):
        c = run_satrec_comparison()
        # Nested sharing beats flat sharing decisively (section 11.1.2).
        assert c.nested_shared < c.flat_shared
        # The dynamic schedule is long (sum of repetitions).
        assert c.dynamic_schedule_length == 4515
        # Dynamic per-edge peaks beat the SAS total (section 11.1.3).
        assert c.dynamic_nonshared != c.nested_nonshared
        text = format_satrec(c)
        assert "nested SAS" in text


class TestCdDatIO:
    def test_nested_beats_flat(self):
        """Section 11.1.3: nested SAS needs far less input buffering."""
        r = run_cddat_io()
        assert r.period_samples == 147
        assert r.nested_backlog < r.flat_backlog

    def test_custom_execution_times(self):
        times = {"A": 10, "B": 20, "C": 20, "D": 25, "E": 25, "F": 15}
        r = run_cddat_io(execution_times=times)
        assert r.nested_backlog < r.flat_backlog

    def test_input_buffering_flat_spike(self):
        """The flat SAS's backlog approaches a full period of samples."""
        r = run_cddat_io()
        assert r.flat_backlog > r.period_samples // 2
