"""The observability layer: recorders, exports, and zero-perturbation.

Three families of guarantees:

* **Recorder mechanics** — spans nest, close on exception, counters
  attach to the open span, worker trees merge in task order, and the
  injected clock makes recordings deterministic.
* **Equivalence** — tracing must never change what the compiler
  computes: results are bit-identical with no recorder, a
  ``NullRecorder``, and a full ``TraceRecorder``; and a parallel run
  merges to the same counter totals as a serial one.
* **Exception paths** — a stage that raises still leaves its partial
  timing row and a well-formed trace whose failing span carries the
  error (the ``--profile``-loses-rows regression).
"""

import json

import pytest

from repro import obs
from repro.apps import table1_graph
from repro.exceptions import SDFError
from repro.experiments.runner import TimingReport, parallel_map
from repro.experiments.table1 import run_table1
from repro.scheduling.pipeline import implement, implement_best
from repro.sdf.random_graphs import random_sdf_graph


def counting_clock():
    """Deterministic injected clock: 0, 1, 2, ..."""
    ticks = iter(range(10 ** 9))
    return lambda: next(ticks)


class TestRecorder:
    def test_spans_nest_and_close(self):
        rec = obs.TraceRecorder(clock=counting_clock())
        with rec.span("outer", graph="g") as outer:
            with rec.span("inner") as inner:
                assert rec.open_spans == ["outer", "inner"]
        assert rec.open_spans == []
        assert rec.roots == [outer]
        assert outer.children == [inner]
        assert outer.attrs == {"graph": "g"}
        assert (outer.start, inner.start, inner.end, outer.end) == (0, 1, 2, 3)

    def test_counters_attach_to_open_span(self):
        rec = obs.TraceRecorder(clock=counting_clock())
        rec.count("loose", 5)
        with rec.span("a") as a:
            rec.count("work", 2)
            rec.count("work")
        assert a.counters == {"work": 3}
        assert rec.counters == {"loose": 5}
        assert rec.counter_totals() == {"loose": 5, "work": 3}

    def test_span_records_error_and_still_closes(self):
        rec = obs.TraceRecorder(clock=counting_clock())
        with pytest.raises(ValueError):
            with rec.span("failing"):
                raise ValueError("boom")
        assert rec.open_spans == []
        (span,) = rec.roots
        assert span.error == "ValueError('boom')"
        assert span.end is not None

    def test_out_of_order_close_raises(self):
        rec = obs.TraceRecorder(clock=counting_clock())
        outer = rec.span("outer")
        inner = rec.span("inner")
        outer.__enter__()
        inner.__enter__()
        with pytest.raises(RuntimeError):
            outer.__exit__(None, None, None)

    def test_merge_serialized_grafts_under_open_span(self):
        worker = obs.TraceRecorder(clock=counting_clock())
        with worker.span("task"):
            worker.count("work", 7)
        parent = obs.TraceRecorder(clock=counting_clock())
        with parent.span("fanout") as fanout:
            parent.merge_serialized(worker.serialize())
        assert [c.name for c in fanout.children] == ["task"]
        assert parent.counter_totals() == {"work": 7}

    def test_serialize_roundtrip(self):
        rec = obs.TraceRecorder(clock=counting_clock())
        with rec.span("a", k="v"):
            rec.count("n", 3)
            with rec.span("b"):
                pass
        data = rec.serialize()
        restored = obs.Span.deserialize(data["roots"][0])
        assert restored.serialize() == data["roots"][0]

    def test_null_recorder_discards_everything(self):
        rec = obs.NULL_RECORDER
        assert rec.enabled is False
        with rec.span("anything", x=1) as span:
            assert span is None
        rec.count("whatever", 10)
        rec.merge_serialized({"roots": [], "counters": {"x": 1}})

    def test_ambient_activation(self):
        rec = obs.TraceRecorder(clock=counting_clock())
        assert obs.current() is obs.NULL_RECORDER
        with obs.activate(rec):
            assert obs.current() is rec
        assert obs.current() is obs.NULL_RECORDER


class TestExports:
    def _recorded(self):
        rec = obs.TraceRecorder(clock=counting_clock())
        with rec.span("compile", graph="g"):
            rec.count("dp.cells", 10)
            with rec.span("dppo"):
                pass
        return rec

    def test_chrome_trace_loads_and_carries_counters(self, tmp_path):
        rec = self._recorded()
        path = tmp_path / "trace.json"
        assert obs.write_trace(rec, str(path)) == "chrome"
        payload = json.loads(path.read_text())
        events = payload["traceEvents"]
        assert [e["name"] for e in events] == ["compile", "dppo"]
        assert all(e["ph"] == "X" for e in events)
        assert events[0]["args"]["dp.cells"] == 10
        assert payload["otherData"]["counters"] == {"dp.cells": 10}

    def test_jsonl_format(self, tmp_path):
        rec = self._recorded()
        path = tmp_path / "trace.jsonl"
        assert obs.write_trace(rec, str(path)) == "jsonl"
        rows = [json.loads(l) for l in path.read_text().splitlines()]
        spans = [r for r in rows if r["type"] == "span"]
        counters = [r for r in rows if r["type"] == "counter"]
        assert [(s["name"], s["depth"]) for s in spans] == [
            ("compile", 0), ("dppo", 1)
        ]
        assert counters == [
            {"type": "counter", "name": "dp.cells", "total": 10}
        ]

    def test_format_stats_mentions_spans_and_counters(self):
        text = obs.format_stats(self._recorded())
        assert "compile" in text
        assert "dp.cells" in text


def _result_fingerprint(result):
    return (
        result.order,
        result.dppo_cost,
        str(result.dppo_schedule),
        result.sdppo_cost,
        str(result.sdppo_schedule),
        result.mco,
        result.mcp,
        result.ffdur_total,
        result.ffstart_total,
        dict(result.allocation.offsets),
        result.allocation.total,
        result.bmlb,
    )


class TestTracingDoesNotPerturb:
    @pytest.mark.parametrize("system", ["qmf23_2d", "satrec"])
    def test_pipeline_bit_identical_across_recorders(self, system):
        graph = table1_graph(system)
        bare = implement_best(graph)
        null = implement_best(graph, recorder=obs.NullRecorder())
        traced_rec = obs.TraceRecorder(clock=counting_clock())
        traced = implement_best(graph, recorder=traced_rec)
        for r in (null, traced):
            assert _result_fingerprint(r.rpmc) == _result_fingerprint(bare.rpmc)
            assert _result_fingerprint(r.apgan) == _result_fingerprint(
                bare.apgan
            )
        # ... and the traced run actually recorded the work.
        totals = traced_rec.counter_totals()
        assert totals["dp.cells"] > 0
        assert totals["alloc.words"] > 0
        assert traced_rec.open_spans == []

    def test_serial_and_parallel_table1_merge_identically(self):
        systems = ["qmf23_2d", "qmf12_2d", "satrec"]
        rec_serial = obs.TraceRecorder(clock=counting_clock())
        rows_serial = run_table1(systems, jobs=1, recorder=rec_serial)
        rec_fanned = obs.TraceRecorder(clock=counting_clock())
        rows_fanned = run_table1(systems, jobs=2, recorder=rec_fanned)
        assert rows_serial == rows_fanned
        assert rec_serial.counter_totals() == rec_fanned.counter_totals()
        names_serial = [s.name for _, s in rec_serial.iter_spans()]
        names_fanned = [s.name for _, s in rec_fanned.iter_spans()]
        assert names_serial == names_fanned
        assert names_serial.count("table1.system") == len(systems)


class TestParallelMapTracing:
    def test_traced_serial_path_strips_recordings(self):
        rec = obs.TraceRecorder(clock=counting_clock())
        out = parallel_map(abs, [-1, -2, -3], jobs=1, recorder=rec)
        assert out == [1, 2, 3]
        assert [s.name for s in rec.roots] == ["task"] * 3

    def test_null_recorder_skips_wrapping(self):
        out = parallel_map(abs, [-1, -2], jobs=1, recorder=obs.NullRecorder())
        assert out == [1, 2]


class TestExceptionPaths:
    def _crash(self, report, recorder):
        graph = random_sdf_graph(4, seed=3)
        order = list(reversed(implement(graph, "apgan").order))
        implement(
            graph, order=order, trusted_order=True, use_chain_dp=False,
            report=report, recorder=recorder,
        )

    def test_partial_rows_and_trace_survive_stage_crash(self):
        report = TimingReport()
        rec = obs.TraceRecorder(clock=counting_clock())
        with pytest.raises(SDFError):
            self._crash(report, rec)
        # The raising stage still produced its row, error attached.
        assert report.rows
        error_rows = [r for r in report.rows if "error" in r["meta"]]
        assert error_rows
        # The span stack unwound; the failure is on the spans.
        assert rec.open_spans == []
        assert any(s.error for _, s in rec.iter_spans())

    def test_timing_report_stage_records_on_exception(self):
        report = TimingReport()
        with pytest.raises(KeyError):
            with report.stage("doomed", tag=1):
                raise KeyError("gone")
        (row,) = report.rows
        assert row["bench"] == "doomed"
        assert row["meta"]["tag"] == 1
        assert "KeyError" in row["meta"]["error"]
