"""The native kernel layer: bit-identity, dispatch, fallback, caching.

The contract under test is strict: with a compiler present, every
``backend="native"`` result is byte-for-byte identical to the Python
paths — DP tables, split/factoring decisions, schedules, allocations,
full ``implement`` outputs.  Without one (or with ``REPRO_NATIVE=0``),
every entry point silently takes the Python path, observable only as a
single ``native.fallback`` counter.  Kernel binaries are
content-addressed in the artifact cache, digest-verified on read, and
rebuilt (never served) when corrupt.
"""

import os
import random
import shutil

import pytest

from repro import native, obs
from repro.apps import cd_to_dat, satellite_receiver
from repro.check.fault_injection import MUTATION_CLASSES, inject_native_kernel
from repro.check.harness import run_check
from repro.check.oracles import build_artifacts, native_oracles
from repro.cli import main
from repro.native import build_kernel, get_kernels, kernel_fault, resolve_backend
from repro.scheduling import common
from repro.scheduling.dppo import dppo
from repro.scheduling.pipeline import implement
from repro.scheduling.sdppo import sdppo
from repro.sdf.random_graphs import random_sdf_graph
from repro.serve.cache import ArtifactCache, cache_key
from repro.serve.service import CompileOptions, CompileService
from repro.sdf.io import to_json

requires_cc = pytest.mark.skipif(
    shutil.which("cc") is None or not native.native_enabled(),
    reason="native kernels unavailable (no cc, or REPRO_NATIVE=0)",
)


@pytest.fixture(autouse=True)
def _reset_native_loader():
    """Tests below poison the memoized loader (bad $REPRO_CC, disabled
    env); forget it afterwards so later tests re-probe cleanly."""
    yield
    native.reset()


def _implement_signature(result):
    return (
        result.order,
        result.dppo_cost,
        str(result.dppo_schedule),
        result.sdppo_cost,
        str(result.sdppo_schedule),
        result.allocation.offsets,
        result.allocation.total,
        result.bmlb,
    )


# -- bit-identity with a compiler present -------------------------------

@requires_cc
class TestBitIdentity:
    def test_dp_tables_and_schedules(self):
        kernels = get_kernels()
        assert kernels is not None
        for seed in range(12):
            graph = random_sdf_graph(2 + seed, seed=seed)
            order = graph.topological_order()
            for factoring in ("auto", "always", "never"):
                ctx_p = common.ChainContext(graph, order)
                ctx_n = common.ChainContext(graph, order)
                rp = sdppo(
                    graph, order, context=ctx_p,
                    factoring=factoring, backend="python",
                )
                rn = sdppo(
                    graph, order, context=ctx_n,
                    factoring=factoring, backend="native",
                )
                assert rp.cost == rn.cost
                assert rp.b == rn.b
                assert rp.factored == rn.factored
                assert str(rp.schedule) == str(rn.schedule)
            ctx_p = common.ChainContext(graph, order)
            ctx_n = common.ChainContext(graph, order)
            dp = dppo(graph, order, context=ctx_p, backend="python")
            dn = dppo(graph, order, context=ctx_n, backend="native")
            assert (dp.cost, dp.b, str(dp.schedule)) == (
                dn.cost, dn.b, str(dn.schedule)
            )

    def test_raw_dp_over_context_triple(self):
        kernels = get_kernels()
        assert kernels is not None
        for seed in (0, 3, 7):
            graph = random_sdf_graph(4 + seed, seed=seed + 50)
            order = graph.topological_order()
            for shared in (False, True):
                ctx = common.ChainContext(graph, order)
                bp, sp, fp = common.dp_over_context(ctx, shared)
                bn, sn, fn = kernels.dp_over_context(ctx, shared)
                assert bp == bn
                assert sp == sn
                assert fp == fn

    def test_implement_end_to_end(self):
        for graph in (cd_to_dat(), satellite_receiver(),
                      random_sdf_graph(20, seed=9)):
            for method in ("rpmc", "apgan"):
                rp = implement(graph, method, seed=1, backend="python")
                rn = implement(graph, method, seed=1, backend="native")
                assert _implement_signature(rp) == _implement_signature(rn)

    def test_first_fit_offsets_and_probe_counts(self):
        graph = random_sdf_graph(24, seed=4)
        result = implement(graph, "apgan", verify=False, backend="python")
        buffers = result.lifetimes.as_list()
        wig = result.allocation.graph
        from repro.allocation.first_fit import ffdur, ffstart
        for fn in (ffdur, ffstart):
            rec_p, rec_n = obs.TraceRecorder(), obs.TraceRecorder()
            ap = fn(buffers, graph=wig, recorder=rec_p, backend="python")
            an = fn(buffers, graph=wig, recorder=rec_n, backend="native")
            assert ap.offsets == an.offsets
            assert ap.total == an.total
            assert ap.order == an.order
            # The kernel reports the same probe count the Python loop
            # performs — the work is identical, not just the answer.
            assert (
                rec_p.counter_totals()["first_fit.probes"]
                == rec_n.counter_totals()["first_fit.probes"]
            )
            assert rec_n.counter_totals()["native.first_fit"] == 1

    def test_native_counters_and_auto_dispatch(self):
        rec = obs.TraceRecorder()
        graph = random_sdf_graph(12, seed=2)
        implement(graph, "apgan", backend="auto", recorder=rec)
        totals = rec.counter_totals()
        assert totals.get("native.dp", 0) >= 1
        assert totals.get("native.first_fit", 0) >= 1
        assert "native.fallback" not in totals

    def test_backend_none_defaults_to_session(self):
        from repro.scheduling.session import CompilationSession
        graph = cd_to_dat()
        session = CompilationSession(graph, backend="python")
        rec = obs.TraceRecorder()
        implement(graph, "apgan", session=session, recorder=rec)
        assert "native.dp" not in rec.counter_totals()


# -- fallback without a usable compiler ---------------------------------

class TestFallback:
    def test_env_disable_is_silent_and_bit_identical(self, monkeypatch):
        graph = cd_to_dat()
        reference = implement(graph, "apgan", backend="python")
        monkeypatch.setenv("REPRO_NATIVE", "0")
        native.reset()
        assert get_kernels() is None
        rec = obs.TraceRecorder()
        result = implement(graph, "apgan", backend="native", recorder=rec)
        assert _implement_signature(result) == _implement_signature(reference)
        totals = rec.counter_totals()
        assert totals["native.fallback"] == 1
        assert "native.dp" not in totals

    def test_missing_compiler_memoized_fallback(self, monkeypatch):
        monkeypatch.setenv("REPRO_CC", "no-such-compiler-on-any-path")
        native.reset()
        assert get_kernels() is None
        rec = obs.TraceRecorder()
        eff, kernels = resolve_backend("auto", recorder=rec)
        assert (eff, kernels) == ("python", None)
        assert rec.counter_totals()["native.fallback"] == 1

    def test_python_backend_never_probes(self, monkeypatch):
        # A backend="python" request must not even look for a compiler.
        monkeypatch.setenv("REPRO_CC", "no-such-compiler-on-any-path")
        native.reset()
        rec = obs.TraceRecorder()
        eff, kernels = resolve_backend("python", recorder=rec)
        assert (eff, kernels) == ("python", None)
        assert "native.fallback" not in rec.counter_totals()

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError):
            resolve_backend("fortran")

    def test_native_oracles_vacuous_without_kernels(self, monkeypatch):
        monkeypatch.setenv("REPRO_NATIVE", "0")
        native.reset()
        art = build_artifacts(cd_to_dat(), "apgan", backend="native")
        assert native_oracles(art) == []


# -- kernel artifact caching --------------------------------------------

@requires_cc
class TestKernelCache:
    def test_build_then_cache_hit(self, tmp_path):
        rec = obs.TraceRecorder()
        first = build_kernel(cache_root=str(tmp_path), recorder=rec)
        second = build_kernel(cache_root=str(tmp_path), recorder=rec)
        assert first == second
        assert os.path.exists(first)
        totals = rec.counter_totals()
        assert totals["native.kernel_builds"] == 1
        assert totals["native.kernel_cache_hits"] == 1

    def test_corrupt_binary_rebuilt_not_served(self, tmp_path):
        path = build_kernel(cache_root=str(tmp_path))
        with open(path, "wb") as handle:
            handle.write(b"not a shared object")
        rec = obs.TraceRecorder()
        rebuilt = build_kernel(cache_root=str(tmp_path), recorder=rec)
        assert rec.counter_totals()["native.kernel_builds"] == 1
        with open(rebuilt, "rb") as handle:
            assert handle.read() != b"not a shared object"

    def test_cache_stats_separates_kinds(self, tmp_path):
        cache = ArtifactCache(str(tmp_path))
        build_kernel(cache_root=str(tmp_path))
        service = CompileService(cache=cache)
        report, status = service.compile_document(to_json(cd_to_dat()))
        assert status == "miss"
        stats = cache.stats()
        assert stats["kinds"]["reports"]["entries"] == 1
        assert stats["kinds"]["kernels"]["entries"] == 1
        assert stats["kinds"]["kernels"]["bytes"] > 0
        # Top-level figures keep their pre-kernel meaning: reports only.
        assert stats["entries"] == stats["kinds"]["reports"]["entries"]


# -- CompileOptions / cache-key neutrality ------------------------------

class TestCompileOptionsBackend:
    def test_round_trip_and_validation(self):
        options = CompileOptions.from_dict({"backend": "native"})
        assert options.backend == "native"
        assert CompileOptions.from_dict(options.as_dict()).backend == "native"
        with pytest.raises(ValueError):
            CompileOptions.from_dict({"backend": "fortran"})

    def test_backend_excluded_from_cache_key(self):
        document = to_json(cd_to_dat())
        keys = {
            cache_key(document, CompileOptions(backend=b).key_dict())
            for b in ("auto", "python", "native")
        }
        assert len(keys) == 1
        assert "backend" not in CompileOptions().key_dict()
        assert CompileOptions().as_dict()["backend"] == "auto"


# -- CLI ----------------------------------------------------------------

class TestCli:
    def test_compile_backend_python(self, capsys):
        assert main(["compile", "cddat", "--backend", "python"]) == 0
        assert "shared" in capsys.readouterr().out.lower()

    @requires_cc
    def test_compile_backend_native(self, capsys):
        python_out = None
        for backend in ("python", "native"):
            assert main(["compile", "cddat", "--backend", backend]) == 0
            out = capsys.readouterr().out
            if python_out is None:
                python_out = out
            else:
                assert out == python_out

    @requires_cc
    def test_cache_stats_prints_kinds(self, tmp_path, capsys):
        build_kernel(cache_root=str(tmp_path))
        assert main(["cache", "stats", "--cache-dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "kernels:" in out
        assert "reports:" in out


# -- differential harness integration -----------------------------------

class TestHarnessIntegration:
    def test_mutation_registry_has_native_class(self):
        assert len(MUTATION_CLASSES) == 13
        assert "native_kernel" in MUTATION_CLASSES

    def test_injection_caught(self):
        art = build_artifacts(random_sdf_graph(8, seed=6), "apgan")
        outcome = inject_native_kernel(art, random.Random(0))
        assert outcome is not None
        assert outcome.caught

    @requires_cc
    def test_kernel_fault_changes_results(self):
        graph = random_sdf_graph(8, seed=6)
        reference = implement(graph, "apgan", verify=False, backend="native")
        with kernel_fault("dp_cell"):
            skewed = implement(graph, "apgan", verify=False, backend="native")
        assert (
            skewed.dppo_cost != reference.dppo_cost
            or skewed.sdppo_cost != reference.sdppo_cost
        )
        with pytest.raises(ValueError):
            with kernel_fault("segfault"):
                pass

    def test_run_check_native_backend(self):
        report = run_check(trials=4, seed=11, backend="native")
        assert report.ok, report.format()
