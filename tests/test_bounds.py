"""Tests for buffer memory lower bounds (BMLB, any-schedule minimum)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.sdf.graph import Edge, SDFGraph
from repro.sdf.bounds import (
    bmlb,
    bmlb_edge,
    min_buffer_any_schedule,
    min_buffer_any_schedule_edge,
    tnse,
    tnse_map,
)
from repro.sdf.schedule import parse_schedule
from repro.sdf.simulate import max_tokens
from repro.sdf.topsort import all_topological_sorts
from repro.scheduling.dppo import dppo


class TestBMLBFormula:
    def test_delayless(self):
        # eta = a*b/gcd(a,b)
        assert bmlb_edge(Edge("A", "B", 2, 3)) == 6
        assert bmlb_edge(Edge("A", "B", 4, 6)) == 12
        assert bmlb_edge(Edge("A", "B", 1, 1)) == 1

    def test_small_delay_adds(self):
        assert bmlb_edge(Edge("A", "B", 2, 3, delay=2)) == 8

    def test_large_delay_dominates(self):
        assert bmlb_edge(Edge("A", "B", 2, 3, delay=10)) == 10

    def test_graph_bmlb_sums_words(self):
        g = SDFGraph()
        g.add_actors("ABC")
        g.add_edge("A", "B", 2, 3, token_size=2)
        g.add_edge("B", "C", 1, 1)
        assert bmlb(g) == 6 * 2 + 1


class TestAnyScheduleBound:
    def test_delayless(self):
        # a + b - gcd(a, b)
        assert min_buffer_any_schedule_edge(Edge("A", "B", 2, 3)) == 4
        assert min_buffer_any_schedule_edge(Edge("A", "B", 4, 6)) == 8
        assert min_buffer_any_schedule_edge(Edge("A", "B", 1, 1)) == 1

    def test_delay_mod_gcd(self):
        # a=4, b=6, c=2, d=3 < 8: bound = 8 + (3 mod 2) = 9
        assert min_buffer_any_schedule_edge(Edge("A", "B", 4, 6, delay=3)) == 9

    def test_large_delay(self):
        assert min_buffer_any_schedule_edge(Edge("A", "B", 2, 3, delay=50)) == 50

    def test_never_exceeds_bmlb(self):
        for a in range(1, 8):
            for b in range(1, 8):
                e = Edge("A", "B", a, b)
                assert min_buffer_any_schedule_edge(e) <= bmlb_edge(e)

    def test_graph_sum(self):
        g = SDFGraph()
        g.add_actors("ABC")
        g.add_edge("A", "B", 2, 3)
        g.add_edge("B", "C", 3, 2)
        assert min_buffer_any_schedule(g) == 4 + 4


class TestTNSE:
    def test_tnse_map(self):
        g = SDFGraph()
        g.add_actors("ABC")
        g.add_edge("A", "B", 2, 1)
        g.add_edge("B", "C", 1, 3)
        m = tnse_map(g)
        assert m[("A", "B", 0)] == 6
        assert m[("B", "C", 0)] == 6

    def test_tnse_single_edge(self):
        g = SDFGraph()
        g.add_actors("AB")
        e = g.add_edge("A", "B", 4, 6)
        assert tnse(g, e) == 12


class TestBMLBIsALowerBound:
    """BMLB(e) <= max_tokens(e, S) for every valid SAS S (exhaustive on
    small graphs)."""

    @given(
        st.integers(min_value=1, max_value=4),
        st.integers(min_value=1, max_value=4),
        st.integers(min_value=1, max_value=4),
        st.integers(min_value=1, max_value=4),
    )
    @settings(max_examples=30, deadline=None)
    def test_three_actor_chain(self, p1, c1, p2, c2):
        g = SDFGraph()
        g.add_actors("ABC")
        g.add_edge("A", "B", p1, c1)
        g.add_edge("B", "C", p2, c2)
        result = dppo(g, ["A", "B", "C"])
        peaks = max_tokens(g, result.schedule)
        assert peaks[("A", "B", 0)] >= bmlb_edge(g.edge("A", "B"))
        assert peaks[("B", "C", 0)] >= bmlb_edge(g.edge("B", "C"))
        assert result.cost >= bmlb(g)
