"""Tests for the compilation service: cache, service core, HTTP server."""

import json
import os
import threading
import time

import pytest

from repro.apps.ptolemy_demos import cd_to_dat
from repro.check.fault_injection import inject_cache_corrupt
from repro.check.oracles import build_artifacts
from repro.scheduling.pipeline import implement
from repro.sdf.graph import SDFGraph
from repro.sdf.io import to_json
from repro.serve import (
    ArtifactCache,
    CompilationReport,
    CompileOptions,
    CompileServer,
    CompileService,
    cache_key,
)
from repro.serve import client as serve_client
from repro.serve.client import (
    BatchItemError,
    ServeClientError,
    compile_batch_remote,
    compile_remote,
    get_json,
)

import random


def small_graph():
    g = SDFGraph("serve_sample")
    g.add_actors("ABC")
    g.add_edge("A", "B", 3, 2)
    g.add_edge("B", "C", 2, 5, delay=2)
    return g


def make_report(**overrides):
    result = implement(small_graph())
    report = CompilationReport.from_result(result, "serve_sample")
    for name, value in overrides.items():
        setattr(report, name, value)
    return report


class TestCacheKey:
    def test_key_order_invariant(self):
        doc = to_json(small_graph())
        reordered = {k: doc[k] for k in reversed(list(doc))}
        reordered["edges"] = [
            {k: e[k] for k in reversed(list(e))} for e in doc["edges"]
        ]
        assert cache_key(doc) == cache_key(reordered)

    def test_semantic_changes_change_key(self):
        doc = to_json(small_graph())
        base = cache_key(doc)
        assert cache_key(doc, {"method": "apgan"}) != base
        assert cache_key(doc, version="other") != base
        changed = json.loads(json.dumps(doc))
        changed["edges"][0]["production"] += 1
        assert cache_key(changed) != base


class TestArtifactCache:
    def test_put_get_round_trip(self, tmp_path):
        cache = ArtifactCache(str(tmp_path))
        report = make_report()
        key = cache_key(to_json(small_graph()))
        cache.put(key, report)
        again = cache.get(key)
        assert again is not None
        assert again.cached is True
        assert again.canonical() != ""  # volatile fields excluded
        # Stored copy is bit-identical modulo the key field it gains.
        report.key = key
        assert again.canonical() == report.canonical()
        assert cache.hits == 1 and cache.writes == 1

    def test_missing_entry_is_a_miss(self, tmp_path):
        cache = ArtifactCache(str(tmp_path))
        assert cache.get("0" * 64) is None
        assert cache.misses == 1

    def test_no_temp_files_left_behind(self, tmp_path):
        cache = ArtifactCache(str(tmp_path))
        cache.put("ab" * 32, make_report())
        leftovers = [
            name
            for _, _, names in os.walk(str(tmp_path))
            for name in names
            if name.endswith(".tmp")
        ]
        assert leftovers == []

    @pytest.mark.parametrize("mode", ["truncate", "tamper", "garbage"])
    def test_corrupt_entry_evicted_not_served(self, tmp_path, mode):
        cache = ArtifactCache(str(tmp_path))
        key = "cd" * 32
        cache.put(key, make_report())
        path = cache.path_for(key)
        if mode == "truncate":
            with open(path, "r+") as handle:
                handle.truncate(os.path.getsize(path) // 2)
        elif mode == "tamper":
            with open(path) as handle:
                entry = json.load(handle)
            entry["report"]["total"] += 1
            with open(path, "w") as handle:
                json.dump(entry, handle)
        else:
            with open(path, "w") as handle:
                handle.write("\x00garbage\x00")
        assert cache.get(key) is None
        assert not os.path.exists(path)
        assert cache.evictions == 1 and cache.misses == 1

    def test_wrong_key_field_rejected(self, tmp_path):
        cache = ArtifactCache(str(tmp_path))
        cache.put("ef" * 32, make_report())
        # Entry copied under a different key must fail verification.
        src = cache.path_for("ef" * 32)
        dst = cache.path_for("01" * 32)
        os.makedirs(os.path.dirname(dst), exist_ok=True)
        with open(src) as handle:
            data = handle.read()
        with open(dst, "w") as handle:
            handle.write(data)
        assert cache.get("01" * 32) is None
        assert not os.path.exists(dst)

    def test_gc_max_entries_keeps_newest(self, tmp_path):
        cache = ArtifactCache(str(tmp_path))
        report = make_report()
        keys = [format(i, "02x") * 32 for i in range(4)]
        for i, key in enumerate(keys):
            cache.put(key, report)
            os.utime(cache.path_for(key), (1000 + i, 1000 + i))
        assert cache.gc(max_entries=2) == 2
        assert cache.get(keys[0]) is None
        assert cache.get(keys[3]) is not None

    def test_gc_max_age(self, tmp_path):
        cache = ArtifactCache(str(tmp_path))
        cache.put("aa" * 32, make_report())
        os.utime(cache.path_for("aa" * 32), (100.0, 100.0))
        assert cache.gc(max_age_s=50.0, now=1000.0) == 1
        assert cache.stats()["entries"] == 0

    def test_clear_and_stats(self, tmp_path):
        cache = ArtifactCache(str(tmp_path))
        cache.put("bb" * 32, make_report())
        stats = cache.stats()
        assert stats["entries"] == 1 and stats["bytes"] > 0
        assert cache.clear() == 1
        assert cache.stats()["entries"] == 0


class TestCompilationReport:
    def test_json_round_trip(self):
        report = make_report(cached=True, wall_s=1.5)
        again = CompilationReport.from_json(report.to_json())
        assert again == report

    def test_canonical_excludes_volatile(self):
        a = make_report()
        b = make_report(cached=True, wall_s=99.0)
        assert a.canonical() == b.canonical()
        assert a.digest() == b.digest()

    def test_summary_mentions_source(self):
        assert "cache hit" in make_report(cached=True).summary_lines()[0]
        assert "compiled" in make_report().summary_lines()[0]


class TestCompileOptions:
    def test_unknown_option_rejected(self):
        with pytest.raises(ValueError, match="unknown compile options"):
            CompileOptions.from_dict({"methd": "rpmc"})

    def test_round_trip(self):
        options = CompileOptions(method="apgan", seed=3)
        assert CompileOptions.from_dict(options.as_dict()) == options


class TestCompileService:
    def test_miss_then_hit_bit_identical(self, tmp_path):
        service = CompileService(cache=ArtifactCache(str(tmp_path)))
        doc = to_json(cd_to_dat())
        cold, s1 = service.compile_document(doc)
        warm, s2 = service.compile_document(doc)
        assert (s1, s2) == ("miss", "hit")
        assert warm.canonical() == cold.canonical()
        assert warm.cached and not cold.cached

    def test_disabled_cache_matches_direct_pipeline(self):
        doc = to_json(cd_to_dat())
        report, status = CompileService().compile_document(doc)
        assert status == "disabled"
        direct = CompilationReport.from_result(
            implement(cd_to_dat()), "cd2dat"
        )
        assert report.canonical() == direct.canonical()

    def test_options_fragment_cache(self, tmp_path):
        service = CompileService(cache=ArtifactCache(str(tmp_path)))
        doc = to_json(small_graph())
        _, s1 = service.compile_document(doc, CompileOptions(method="rpmc"))
        _, s2 = service.compile_document(doc, CompileOptions(method="apgan"))
        assert (s1, s2) == ("miss", "miss")

    def test_sessions_are_reused(self, tmp_path):
        service = CompileService()
        doc = to_json(small_graph())
        service.compile_document(doc, use_cache=False)
        assert len(service._sessions) == 1
        service.compile_document(doc, use_cache=False)
        assert len(service._sessions) == 1

    def test_session_lru_key_is_the_session_graph_digest(self):
        # The LRU key, CompilationSession.graph_digest, and the graph
        # component of cache keys must all be the same content address.
        service = CompileService()
        service.compile_document(to_json(small_graph()), use_cache=False)
        ((digest, session),) = service._sessions.items()
        assert session.graph_digest == digest

    def test_batch_preserves_order_and_statuses(self, tmp_path):
        service = CompileService(cache=ArtifactCache(str(tmp_path)))
        docs = [to_json(small_graph()), to_json(cd_to_dat())]
        results = service.compile_batch(docs + docs, jobs=1)
        names = [r.graph for r, _ in results]
        assert names == ["serve_sample", "cd2dat"] * 2
        assert [s for _, s in results] == ["miss", "miss", "hit", "hit"]
        assert results[0][0].canonical() == results[2][0].canonical()


class _StubService:
    """Duck-typed service whose compiles block until released."""

    cache = None

    def __init__(self, delay=0.0):
        self.delay = delay
        self.calls = 0

    def compile_document(self, document, options, use_cache=True,
                         recorder=None):
        self.calls += 1
        time.sleep(self.delay)
        return make_report(), "disabled"

    def compile_batch(self, documents, options, use_cache=True,
                      jobs=None, recorder=None):
        return [
            self.compile_document(d, options, use_cache) for d in documents
        ]


@pytest.fixture
def live_server(tmp_path):
    server = CompileServer(
        CompileService(cache=ArtifactCache(str(tmp_path))),
        port=0, workers=2, queue_limit=4, quiet=True,
    ).start()
    yield server
    server.drain(timeout=10)


class TestCompileServer:
    def test_healthz_and_stats(self, live_server):
        assert get_json(live_server.url, "/healthz") == {"status": "ok"}
        stats = get_json(live_server.url, "/stats")
        assert stats["server"]["requests"] == 0
        assert "cache" in stats

    def test_compile_miss_then_hit(self, live_server):
        doc = to_json(cd_to_dat())
        cold, s1 = compile_remote(doc, url=live_server.url)
        warm, s2 = compile_remote(doc, url=live_server.url)
        assert (s1, s2) == ("miss", "hit")
        assert warm.canonical() == cold.canonical()
        stats = get_json(live_server.url, "/stats")
        assert stats["server"]["hits"] == 1
        assert stats["server"]["misses"] == 1

    def test_batch_endpoint(self, live_server):
        doc = to_json(small_graph())
        results = compile_batch_remote([doc, doc], url=live_server.url)
        assert [s for _, s in results] == ["miss", "hit"]

    def test_malformed_request_400(self, live_server):
        with pytest.raises(ServeClientError) as err:
            compile_remote({"actors": "nope"}, url=live_server.url)
        assert err.value.status == 400

    def test_unknown_option_400(self, live_server):
        with pytest.raises(ServeClientError) as err:
            compile_remote(
                to_json(small_graph()), url=live_server.url,
                options={"bogus": 1},
            )
        assert err.value.status == 400

    def test_unknown_path_404(self, live_server):
        payload = get_json(live_server.url, "/nope")
        assert "error" in payload

    def test_backpressure_429(self):
        server = CompileServer(
            _StubService(delay=0.5), port=0, workers=1,
            queue_limit=1, quiet=True,
        ).start()
        try:
            doc = to_json(small_graph())
            errors = []

            def slow():
                try:
                    compile_remote(doc, url=server.url, timeout=10)
                except ServeClientError as exc:
                    errors.append(exc)

            first = threading.Thread(target=slow)
            first.start()
            time.sleep(0.1)  # first request now occupies the one slot
            with pytest.raises(ServeClientError) as err:
                compile_remote(doc, url=server.url, timeout=10)
            assert err.value.status == 429
            first.join()
            assert errors == []
            assert server.stats()["server"]["rejected"] == 1
        finally:
            server.drain(timeout=10)

    def test_request_timeout_504(self):
        server = CompileServer(
            _StubService(delay=1.0), port=0, workers=1,
            queue_limit=2, request_timeout=0.05, quiet=True,
        ).start()
        try:
            with pytest.raises(ServeClientError) as err:
                compile_remote(
                    to_json(small_graph()), url=server.url, timeout=10
                )
            assert err.value.status == 504
            assert server.stats()["server"]["timeouts"] == 1
        finally:
            server.drain(timeout=10)

    def test_drain_rejects_new_work(self, tmp_path):
        server = CompileServer(
            CompileService(), port=0, quiet=True,
        ).start()
        url = server.url
        server.drain(timeout=10)
        with pytest.raises(ServeClientError):
            compile_remote(to_json(small_graph()), url=url, timeout=2)

    def test_trace_written_on_drain(self, tmp_path):
        trace = str(tmp_path / "trace.json")
        server = CompileServer(
            CompileService(cache=ArtifactCache(str(tmp_path / "c"))),
            port=0, quiet=True, trace_path=trace,
        ).start()
        compile_remote(to_json(small_graph()), url=server.url)
        server.drain(timeout=10)
        with open(trace) as handle:
            events = json.load(handle)["traceEvents"]
        names = {e["name"] for e in events}
        assert "serve.request" in names
        assert "implement" in names


class _CountingCancel:
    """Stub cancel handle: reports set after ``trip`` ``is_set`` calls."""

    def __init__(self, trip):
        self.trip = trip
        self.calls = 0

    def is_set(self):
        self.calls += 1
        return self.calls > self.trip


class TestBatchThreadPath:
    """/batch on the in-process pool: isolation + timeout reclaim."""

    def test_missing_field_messages_name_field_and_shape(self, live_server):
        # Satellite: a missing graph/graphs key must produce a one-line
        # actionable message, not a bare KeyError repr.
        for path, field in (("/compile", "graph"), ("/batch", "graphs")):
            with pytest.raises(ServeClientError) as err:
                serve_client._post(live_server.url, path, {"options": {}})
            assert err.value.status == 400
            message = str(err.value)
            assert f"missing required field '{field}'" in message
            assert f"POST {path} expects" in message
            assert "\n" not in message

    def test_poisoned_item_isolated(self, live_server):
        good = to_json(small_graph())
        results = compile_batch_remote(
            [good, {"actors": "nope"}, good], url=live_server.url
        )
        (r0, s0), (r1, s1), (r2, s2) = results
        assert isinstance(r1, BatchItemError)
        assert (s1, r1.code) == ("error", 400)
        assert s0 == "miss" and s2 == "hit"
        assert r0.canonical() == r2.canonical()
        stats = get_json(live_server.url, "/stats")["server"]
        assert stats["errors"] >= 1

    def test_service_cancel_skips_unstarted_items(self, tmp_path):
        service = CompileService(cache=ArtifactCache(str(tmp_path)))
        docs = [to_json(small_graph()) for _ in range(5)]
        cancel = _CountingCancel(trip=2)
        results = service.compile_batch(docs, jobs=1, cancel=cancel)
        statuses = [s for _, s in results]
        # Two rounds of width 1 ran, then the cancel tripped: the
        # remaining three items were skipped, never compiled.
        assert statuses == ["miss", "hit", "cancelled",
                            "cancelled", "cancelled"]
        for payload, status in results[2:]:
            assert status == "cancelled"
            assert payload["code"] == 503
            assert "cancelled" in payload["error"]

    def test_batch_timeout_reclaims_pool_slot(self):
        # Satellite: after a /batch 504 the abandoned batch must stop
        # at the next item boundary instead of grinding the pool; the
        # reclaim shows up in /stats as timeout_reclaimed.
        class _SlowBatchService:
            cache = None

            def compile_batch(self, documents, options, use_cache=True,
                              jobs=None, recorder=None, cancel=None):
                out = []
                for document in documents:
                    if cancel is not None and cancel.is_set():
                        out.append((
                            {"error": "cancelled", "code": 503},
                            "cancelled",
                        ))
                        continue
                    time.sleep(0.2)
                    out.append((
                        {"error": "should have timed out", "code": 500},
                        "error",
                    ))
                return out

        server = CompileServer(
            _SlowBatchService(), port=0, workers=1,
            queue_limit=4, request_timeout=0.1, quiet=True,
        ).start()
        try:
            with pytest.raises(ServeClientError) as err:
                serve_client._post(
                    server.url, "/batch",
                    {"graphs": [{}] * 6, "options": {}}, timeout=30,
                )
            assert err.value.status == 504
            deadline = time.monotonic() + 10
            while time.monotonic() < deadline:
                stats = server.stats()["server"]
                if stats["timeout_reclaimed"] >= 4 and not stats["inflight"]:
                    break
                time.sleep(0.05)
            assert stats["timeouts"] == 1
            # At most two items ran (one in flight at the 504, maybe
            # one more before the event was observed): the rest were
            # reclaimed without executing.
            assert stats["timeout_reclaimed"] >= 4
            assert stats["inflight"] == 0
        finally:
            server.drain(timeout=10)


class TestCacheCorruptInjection:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_all_modes_caught(self, seed):
        art = build_artifacts(small_graph(), method="rpmc", seed=seed)
        outcome = inject_cache_corrupt(art, random.Random(seed))
        assert outcome is not None
        assert outcome.caught, outcome.detail
