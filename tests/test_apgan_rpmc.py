"""Tests for the APGAN and RPMC topological-sort heuristics."""

import pytest

from repro.exceptions import GraphStructureError
from repro.sdf.graph import SDFGraph
from repro.sdf.random_graphs import random_sdf_graph
from repro.sdf.repetitions import repetitions_vector
from repro.sdf.simulate import validate_schedule
from repro.sdf.topsort import is_topological_order
from repro.scheduling.apgan import apgan
from repro.scheduling.dppo import dppo
from repro.scheduling.rpmc import rpmc


def cd_dat_like():
    g = SDFGraph()
    g.add_actors("ABCDEF")
    g.add_edge("A", "B", 1, 1)
    g.add_edge("B", "C", 2, 3)
    g.add_edge("C", "D", 2, 7)
    g.add_edge("D", "E", 8, 7)
    g.add_edge("E", "F", 5, 1)
    return g


class TestAPGAN:
    def test_schedule_is_valid_sas(self):
        g = cd_dat_like()
        result = apgan(g)
        validate_schedule(g, result.schedule)
        assert result.schedule.is_single_appearance()

    def test_order_is_topological(self):
        for seed in range(8):
            g = random_sdf_graph(15, seed=seed)
            result = apgan(g)
            assert is_topological_order(g, result.order)

    def test_clusters_largest_gcd_first(self):
        """A pair with a large repetition gcd ends up innermost."""
        g = SDFGraph()
        g.add_actors("ABC")
        g.add_edge("A", "B", 1, 10)   # q = (10, 1, ...) gcd(A,B) = 1
        g.add_edge("B", "C", 10, 1)   # q(C) = 10, gcd(B,C) = 1
        g2 = SDFGraph()
        g2.add_actors("XYZ")
        g2.add_edge("X", "Y", 1, 1)   # gcd(X,Y) = q
        g2.add_edge("Y", "Z", 5, 1)
        result = apgan(g2)
        # X and Y share repetition count, so they cluster first: the
        # schedule nests X and Y together inside the common loop.
        text = str(result.schedule)
        assert "X Y" in text or "(X Y)" in text or "X Y" in text.replace("(", " ").replace(")", " ")

    def test_rejects_cyclic(self):
        g = SDFGraph()
        g.add_actors("AB")
        g.add_edge("A", "B", 1, 1)
        g.add_edge("B", "A", 1, 1, delay=2)
        with pytest.raises(GraphStructureError):
            apgan(g)

    def test_rejects_empty(self):
        with pytest.raises(GraphStructureError):
            apgan(SDFGraph())

    def test_single_actor(self):
        g = SDFGraph()
        g.add_actor("A")
        result = apgan(g)
        assert result.order == ["A"]

    def test_disconnected_graph(self):
        g = SDFGraph()
        g.add_actors("ABCD")
        g.add_edge("A", "B", 2, 1)
        g.add_edge("C", "D", 1, 3)
        # Two components: APGAN merges within components but cannot
        # cluster across (no adjacency) — should raise the stall error.
        with pytest.raises(GraphStructureError):
            apgan(g)

    def test_apgan_near_bmlb_on_regular_graphs(self):
        """For gcd-friendly graphs APGAN provably hits the BMLB [3]."""
        from repro.sdf.bounds import bmlb
        g = SDFGraph()
        g.add_actors("ABCD")
        g.add_edge("A", "B", 4, 1)
        g.add_edge("B", "C", 2, 1)
        g.add_edge("C", "D", 2, 1)
        result = apgan(g)
        cost = dppo(g, result.order).cost
        assert cost == bmlb(g)


class TestRPMC:
    def test_order_is_topological(self):
        for seed in range(8):
            g = random_sdf_graph(15, seed=seed)
            result = rpmc(g, seed=seed)
            assert is_topological_order(g, result.order)

    def test_deterministic_for_seed(self):
        g = random_sdf_graph(20, seed=3)
        assert rpmc(g, seed=1).order == rpmc(g, seed=1).order

    def test_single_actor(self):
        g = SDFGraph()
        g.add_actor("A")
        assert rpmc(g).order == ["A"]

    def test_two_actors(self):
        g = SDFGraph()
        g.add_actors("AB")
        g.add_edge("A", "B", 2, 1)
        assert rpmc(g).order == ["A", "B"]

    def test_rejects_cyclic(self):
        g = SDFGraph()
        g.add_actors("AB")
        g.add_edge("A", "B", 1, 1)
        g.add_edge("B", "A", 1, 1, delay=2)
        with pytest.raises(GraphStructureError):
            rpmc(g)

    def test_prefers_small_cuts(self):
        """RPMC's top split should avoid cutting the heavy edge."""
        g = SDFGraph()
        g.add_actors("ABCD")
        g.add_edge("A", "B", 100, 100)  # heavy
        g.add_edge("B", "C", 1, 1)      # light
        g.add_edge("C", "D", 100, 100)  # heavy
        order = rpmc(g).order
        # Any topological order is ABCD here; check DPPO cost through
        # the RPMC order is sane.
        assert order == ["A", "B", "C", "D"]

    def test_dag_schedules_through_dppo(self):
        for seed in range(6):
            g = random_sdf_graph(12, seed=100 + seed)
            order = rpmc(g, seed=seed).order
            result = dppo(g, order)
            validate_schedule(g, result.schedule)


class TestHeuristicQuality:
    """Sanity: the heuristics should not be wildly worse than the
    deterministic topological order baseline."""

    @pytest.mark.parametrize("seed", range(5))
    def test_rpmc_not_much_worse_than_natural(self, seed):
        g = random_sdf_graph(15, seed=seed)
        natural = dppo(g, g.topological_order()).cost
        heuristic = dppo(g, rpmc(g, seed=seed).order).cost
        assert heuristic <= 3 * natural

    @pytest.mark.parametrize("seed", range(5))
    def test_apgan_not_much_worse_than_natural(self, seed):
        g = random_sdf_graph(15, seed=seed)
        natural = dppo(g, g.topological_order()).cost
        heuristic = dppo(g, apgan(g).order).cost
        assert heuristic <= 3 * natural
