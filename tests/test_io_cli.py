"""Tests for graph serialization and the command-line interface."""

import io
import json
import os

import pytest

from repro.exceptions import GraphStructureError
from repro.sdf.graph import SDFGraph
from repro.sdf.io import from_json, load_graph, save_graph, to_dot, to_json
from repro.cli import main


def sample_graph():
    g = SDFGraph("sample")
    g.add_actor("A", execution_time=3)
    g.add_actor("B")
    g.add_edge("A", "B", 2, 1, delay=1, token_size=4)
    return g


class TestJson:
    def test_round_trip(self):
        g = sample_graph()
        again = from_json(to_json(g))
        assert again.name == "sample"
        assert again.actor("A").execution_time == 3
        e = again.edge("A", "B")
        assert (e.production, e.consumption, e.delay, e.token_size) == (2, 1, 1, 4)

    def test_file_round_trip(self, tmp_path):
        path = str(tmp_path / "g.json")
        save_graph(sample_graph(), path)
        g = load_graph(path)
        assert g.num_actors == 2
        assert g.num_edges == 1

    def test_stream_round_trip(self):
        buf = io.StringIO()
        save_graph(sample_graph(), buf)
        buf.seek(0)
        assert load_graph(buf).num_actors == 2

    def test_parallel_edges_preserved(self):
        g = SDFGraph()
        g.add_actors("AB")
        g.add_edge("A", "B", 1, 1)
        g.add_edge("A", "B", 2, 2)
        again = from_json(to_json(g))
        assert again.num_edges == 2

    def test_malformed_document(self):
        with pytest.raises(GraphStructureError):
            from_json({"actors": [{"nope": 1}], "edges": []})
        with pytest.raises(GraphStructureError):
            from_json({"actors": [], "edges": [{"source": "A"}]})

    def test_defaults_optional(self):
        g = from_json(
            {
                "actors": [{"name": "A"}, {"name": "B"}],
                "edges": [
                    {"source": "A", "sink": "B",
                     "production": 1, "consumption": 1}
                ],
            }
        )
        assert g.edge("A", "B").delay == 0


class TestDot:
    def test_contains_annotations(self):
        text = to_dot(sample_graph())
        assert '"A" -> "B"' in text
        assert "2/1" in text
        assert "1D" in text
        assert "x4w" in text

    def test_plain_edge_label(self):
        g = SDFGraph()
        g.add_actors("AB")
        g.add_edge("A", "B", 3, 5)
        text = to_dot(g)
        assert "3/5" in text
        assert "D" not in text.split("label")[1].split("]")[0]


class TestCLI:
    def test_systems(self, capsys):
        assert main(["systems"]) == 0
        out = capsys.readouterr().out
        assert "satrec" in out
        assert "qmf12_5d" in out

    def test_compile_system(self, capsys):
        assert main(["compile", "4pamxmitrec", "--check"]) == 0
        out = capsys.readouterr().out
        assert "shared:" in out
        assert "execution check: OK" in out

    def test_compile_json_file(self, tmp_path, capsys):
        path = str(tmp_path / "g.json")
        save_graph(sample_graph(), path)
        assert main(["compile", path]) == 0
        assert "non-shared:" in capsys.readouterr().out

    def test_compile_emit_c(self, tmp_path, capsys):
        target = str(tmp_path / "out.c")
        assert main(["compile", "4pamxmitrec", "--emit-c", target]) == 0
        with open(target) as handle:
            assert "run_one_period" in handle.read()

    def test_compile_unknown(self):
        with pytest.raises(SystemExit):
            main(["compile", "no_such_system"])

    def test_compile_unknown_message_is_one_actionable_line(self):
        with pytest.raises(SystemExit) as err:
            main(["compile", "no_such_system"])
        message = str(err.value)
        assert "no_such_system" in message
        assert "systems" in message
        assert "\n" not in message
        assert "Traceback" not in message

    def test_compile_missing_json_file(self, tmp_path):
        path = str(tmp_path / "missing.json")
        with pytest.raises(SystemExit) as err:
            main(["compile", path])
        message = str(err.value)
        assert "cannot read graph file" in message
        assert "\n" not in message

    def test_compile_unparseable_json_file(self, tmp_path):
        path = str(tmp_path / "broken.json")
        with open(path, "w") as handle:
            handle.write("{not json")
        with pytest.raises(SystemExit) as err:
            main(["compile", path])
        assert "invalid graph file" in str(err.value)

    def test_compile_malformed_graph_document(self, tmp_path):
        path = str(tmp_path / "bad.json")
        with open(path, "w") as handle:
            json.dump({"actors": [{"nope": 1}], "edges": []}, handle)
        with pytest.raises(SystemExit) as err:
            main(["compile", path])
        assert "invalid graph file" in str(err.value)

    def test_table1_subset(self, capsys):
        assert main(["table1", "--systems", "4pamxmitrec"]) == 0
        out = capsys.readouterr().out
        assert "4pamxmitrec" in out
        assert "average improvement" in out

    def test_fig25(self, capsys):
        assert main(["fig25", "--systems", "4pamxmitrec"]) == 0
        assert "#" in capsys.readouterr().out

    def test_fig26(self, capsys):
        assert main(["fig26", "--points", "2x3"]) == 0
        assert "bound" in capsys.readouterr().out

    def test_fig27(self, capsys):
        assert main(["fig27", "--sizes", "10", "--count", "2"]) == 0
        assert "(a)" in capsys.readouterr().out

    def test_satrec(self, capsys):
        assert main(["satrec"]) == 0
        assert "nested SAS" in capsys.readouterr().out

    def test_cddat(self, capsys):
        assert main(["cddat"]) == 0
        assert "147" in capsys.readouterr().out

    def test_dot(self, capsys):
        assert main(["dot", "overAddFFT"]) == 0
        assert "digraph" in capsys.readouterr().out


class TestJobsFlag:
    def test_table1_jobs(self, capsys, monkeypatch):
        monkeypatch.delenv("REPRO_JOBS", raising=False)
        assert main(["table1", "--systems", "4pamxmitrec",
                     "--jobs", "2"]) == 0
        assert "4pamxmitrec" in capsys.readouterr().out

    def test_fig27_jobs(self, capsys, monkeypatch):
        monkeypatch.delenv("REPRO_JOBS", raising=False)
        assert main(["fig27", "--sizes", "10", "--count", "2",
                     "--jobs", "2"]) == 0
        assert "(a)" in capsys.readouterr().out

    def test_negative_jobs_rejected(self, monkeypatch):
        monkeypatch.delenv("REPRO_JOBS", raising=False)
        with pytest.raises(SystemExit):
            main(["table1", "--systems", "4pamxmitrec", "--jobs", "-1"])

    def test_flag_beats_environment(self, capsys, monkeypatch):
        # REPRO_JOBS is invalid; the explicit flag must win (and then
        # rewrite the environment for any nested fan-out).
        monkeypatch.setenv("REPRO_JOBS", "notanumber")
        assert main(["compile", "4pamxmitrec", "--jobs", "1"]) == 0
        assert os.environ["REPRO_JOBS"] == "1"
        assert "shared:" in capsys.readouterr().out


class TestCacheCLI:
    def test_stats_empty(self, tmp_path, capsys):
        assert main(["cache", "stats", "--cache-dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "entries:    0" in out
        assert str(tmp_path) in out

    def test_gc_and_clear(self, tmp_path, capsys):
        from repro.serve import ArtifactCache
        from repro.sdf.io import to_json
        from repro.serve.service import CompileService

        cache = ArtifactCache(str(tmp_path))
        CompileService(cache=cache).compile_document(to_json(sample_graph()))
        assert main(["cache", "gc", "--cache-dir", str(tmp_path),
                     "--max-entries", "5"]) == 0
        assert "removed 0 entries" in capsys.readouterr().out
        assert main(["cache", "clear", "--cache-dir", str(tmp_path)]) == 0
        assert "removed 1 entry" in capsys.readouterr().out
        assert cache.stats()["entries"] == 0


class TestCheckCLI:
    def test_check_clean_run_exits_zero(self, capsys):
        assert main(["check", "--trials", "2", "--seed", "0"]) == 0
        out = capsys.readouterr().out
        assert "0 failure(s)" in out
        assert "check: OK" in out

    def test_check_inject_exits_zero_when_all_caught(self, capsys):
        assert main(["check", "--trials", "1", "--inject"]) == 0
        out = capsys.readouterr().out
        assert "fault injection" in out
        assert "all caught" in out

    def test_check_inject_exits_nonzero_on_missed_mutation(
        self, capsys, monkeypatch
    ):
        # Disarm one mutation class: the self-test must notice that the
        # planted fault went uncaught and fail the whole command.
        from repro.check import fault_injection

        monkeypatch.setattr(
            fault_injection, "MUTATION_CLASSES",
            {"disarmed": lambda art, rng: fault_injection.InjectionOutcome(
                mutation="disarmed", graph_seed=art.seed,
                caught=False, detail="mutation applied, no oracle fired",
            )},
        )
        assert main(["check", "--trials", "1", "--inject"]) == 1
        captured = capsys.readouterr()
        assert "MUTATIONS MISSED" in captured.out
        assert "check: FAILED" in captured.err

    def test_check_bench_out(self, tmp_path, capsys):
        target = str(tmp_path / "bench.json")
        assert main(["check", "--trials", "1", "--no-shrink",
                     "--bench-out", target]) == 0
        with open(target) as handle:
            rows = json.load(handle)
        assert rows[0]["bench"] == "check_differential"
        assert rows[0]["wall_s"] > 0
        assert rows[0]["meta"]["trials"] == 1
        assert rows[0]["meta"]["ok"] is True
