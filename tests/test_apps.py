"""Tests for the benchmark application graphs."""

import pytest

from repro.exceptions import GraphStructureError
from repro.sdf.repetitions import is_consistent, repetitions_vector
from repro.sdf.simulate import has_valid_schedule
from repro.apps import TABLE1_SYSTEMS, table1_graph
from repro.apps.filterbanks import (
    filterbank_by_name,
    one_sided_filterbank,
    two_sided_filterbank,
)
from repro.apps.homogeneous import (
    depth_first_order,
    homogeneous_graph,
    nonshared_requirement,
    shared_lower_bound,
)
from repro.apps.satellite import SATREC_REPETITIONS, satellite_receiver
from repro.apps.ptolemy_demos import cd_to_dat


class TestFilterbanks:
    @pytest.mark.parametrize("depth,expected", [(1, 8), (2, 20), (3, 44), (5, 188)])
    def test_two_sided_node_counts_match_paper(self, depth, expected):
        """The paper: depth 5, 3, 2 filterbanks have 188, 44, 20 nodes."""
        assert two_sided_filterbank(depth).num_actors == expected

    @pytest.mark.parametrize("variant", ["12", "23", "235"])
    @pytest.mark.parametrize("depth", [1, 2, 3])
    def test_two_sided_consistent(self, variant, depth):
        g = two_sided_filterbank(depth, variant)
        assert is_consistent(g)
        assert g.is_acyclic()
        assert g.is_connected()
        assert has_valid_schedule(g)

    @pytest.mark.parametrize("variant", ["12", "23", "235"])
    def test_one_sided_consistent(self, variant):
        g = one_sided_filterbank(4, variant)
        assert is_consistent(g)
        assert has_valid_schedule(g)

    def test_one_sided_node_count(self):
        assert one_sided_filterbank(4).num_actors == 26

    def test_by_name(self):
        g = filterbank_by_name("qmf235_3d")
        assert g.name == "qmf235_3d"
        assert g.num_actors == 44
        g = filterbank_by_name("nqmf23_4d")
        assert g.num_actors == 26

    def test_by_name_rejects_garbage(self):
        with pytest.raises(GraphStructureError):
            filterbank_by_name("foo_3d")
        with pytest.raises(GraphStructureError):
            filterbank_by_name("qmf23_x")

    def test_bad_variant(self):
        with pytest.raises(GraphStructureError):
            two_sided_filterbank(2, "99")

    def test_bad_depth(self):
        with pytest.raises(GraphStructureError):
            two_sided_filterbank(0)


class TestSatrec:
    def test_repetitions_match_published_schedule(self):
        """The schedule in section 11.1.3 fixes the repetitions vector."""
        g = satellite_receiver()
        assert repetitions_vector(g) == SATREC_REPETITIONS

    def test_structure(self):
        g = satellite_receiver()
        assert g.num_actors == 22
        assert g.is_acyclic()
        assert g.is_connected()
        assert has_valid_schedule(g)

    def test_published_schedule_is_valid(self):
        from repro.sdf.schedule import parse_schedule
        from repro.sdf.simulate import is_valid_schedule
        g = satellite_receiver()
        schedule = parse_schedule(
            "(24(11(4A)B)C G H I(11(4D)E)F K L M 10(N S J T U P))"
            "(Q R V 240W)"
        )
        assert is_valid_schedule(g, schedule)


class TestCdDat:
    def test_repetitions(self):
        q = repetitions_vector(cd_to_dat())
        assert q == {"A": 147, "B": 147, "C": 98, "D": 28, "E": 32, "F": 160}


class TestHomogeneous:
    def test_counts(self):
        g = homogeneous_graph(3, 4)
        assert g.num_actors == 3 * 4 + 2
        assert g.num_edges == 3 * 3 + 6

    def test_is_homogeneous(self):
        assert homogeneous_graph(2, 2).is_homogeneous()

    def test_repetitions_all_one(self):
        q = repetitions_vector(homogeneous_graph(3, 3))
        assert set(q.values()) == {1}

    def test_depth_first_order_topological(self):
        from repro.sdf.topsort import is_topological_order
        g = homogeneous_graph(4, 5)
        assert is_topological_order(g, depth_first_order(g))

    def test_bounds(self):
        assert shared_lower_bound(4, 7) == 5
        assert nonshared_requirement(4, 7) == 4 * 6 + 8

    def test_rejects_bad_dims(self):
        with pytest.raises(GraphStructureError):
            homogeneous_graph(0, 3)


class TestSuite:
    @pytest.mark.parametrize("name", sorted(TABLE1_SYSTEMS))
    def test_every_system_well_formed(self, name):
        g = table1_graph(name)
        assert g.num_actors > 5
        assert g.is_connected()
        assert g.is_acyclic()
        assert is_consistent(g)

    def test_unknown_system(self):
        with pytest.raises(KeyError):
            table1_graph("nonesuch")
