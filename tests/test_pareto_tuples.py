"""Tests for incomparable cost tuples in the chain DP (figure 11).

The paper: "we can have incomparable tuples where some elements are
smaller while some are larger ... we follow the strategy of simply
recording both in the dynamic programming table", with an optional
bound to stay polynomial.  These tests verify the Pareto machinery
matters: pruning to a single tuple can produce worse schedules than
keeping the set.
"""

import pytest

from repro.sdf.random_graphs import random_chain_graph
from repro.sdf.simulate import max_live_tokens, validate_schedule
from repro.scheduling.chain_sdppo import chain_sdppo


class TestParetoSets:
    def test_root_pareto_is_nondominated(self):
        for seed in range(20):
            g = random_chain_graph(7, seed=seed)
            result = chain_sdppo(g)
            triples = result.pareto
            for i, a in enumerate(triples):
                for j, b in enumerate(triples):
                    if i != j:
                        assert not a.dominates(b), (seed, a, b)

    def test_incomparable_tuples_arise(self):
        """Some chain exhibits a genuinely multi-entry Pareto cell."""
        found = False
        for seed in range(60):
            g = random_chain_graph(7, seed=seed)
            result = chain_sdppo(g, max_entries=8)
            if len(result.pareto) > 1:
                found = True
                break
        assert found, "no chain produced incomparable root tuples"

    def test_bounding_never_improves_cost(self):
        """A larger Pareto budget can only match or beat a smaller one."""
        for seed in range(20):
            g = random_chain_graph(8, seed=seed)
            narrow = chain_sdppo(g, max_entries=1)
            wide = chain_sdppo(g, max_entries=8)
            assert wide.cost <= narrow.cost, seed
            validate_schedule(g, narrow.schedule)
            validate_schedule(g, wide.schedule)

    def test_pruning_rarely_hurts_in_practice(self):
        """The paper's empirical observation, verified: incomparable
        tuples arise (previous test), but bounding the set — even down
        to one entry — "has not been observed in practice" to change
        outcomes.  We allow at most a couple of regressions across 40
        random chains and require none to be large."""
        regressions = 0
        for seed in range(40):
            g = random_chain_graph(8, seed=seed)
            narrow = chain_sdppo(g, max_entries=1)
            wide = chain_sdppo(g, max_entries=8)
            narrow_truth = max_live_tokens(g, narrow.schedule)
            wide_truth = max_live_tokens(g, wide.schedule)
            if narrow_truth > wide_truth:
                regressions += 1
                assert narrow_truth <= 1.25 * wide_truth, seed
        assert regressions <= 4
