"""The differential checking harness checks itself.

Three layers: the oracle battery stays clean on known-good graphs (the
benchmark systems and the harness's own random trials), the mutation
self-test proves every oracle can actually fire, and the shrinker
reliably minimizes while preserving the failure predicate.
"""

import pytest

from repro.apps import table1_graph
from repro.sdf.graph import SDFGraph
from repro.sdf.random_graphs import random_sdf_graph
from repro.check import (
    DEFAULT_FAMILIES,
    MUTATION_CLASSES,
    run_check,
    run_injection_selftest,
    shrink_graph,
)
from repro.check.fault_injection import InjectionOutcome
from repro.check.harness import (
    broadcast_trial_graph,
    cyclic_trial_graph,
    describe_graph,
    runner_oracles,
    trial_graph,
)
from repro.check.oracles import (
    broadcast_oracles,
    build_artifacts,
    cyclic_oracles,
    run_oracles,
)
from repro.check.reference import (
    full_trace,
    reference_max_tokens,
    reference_peak_token_words,
)


def chain(n: int, **edge_kwargs) -> SDFGraph:
    g = SDFGraph(f"chain{n}")
    for i in range(n):
        g.add_actor(f"a{i}")
    for i in range(n - 1):
        g.add_edge(f"a{i}", f"a{i + 1}", 1, 1, **edge_kwargs)
    return g


class TestOracleBattery:
    @pytest.mark.parametrize("system", ["qmf23_2d", "4pamxmitrec"])
    @pytest.mark.parametrize("method", ["rpmc", "apgan"])
    def test_benchmark_systems_clean(self, system, method):
        art = build_artifacts(table1_graph(system), method=method)
        assert run_oracles(art) == []

    def test_random_trial_graphs_clean(self):
        # The same generator run_check uses, including delay/token-size
        # decoration; a handful of seeds keeps the test fast.
        for graph_seed in (100000, 100001, 100002):
            art = build_artifacts(trial_graph(graph_seed), method="apgan")
            assert run_oracles(art) == []

    def test_run_check_clean(self):
        report = run_check(trials=4, seed=0, inject=False)
        assert report.ok
        assert report.failures == []
        assert report.runner_violations == []
        assert "0 failure(s)" in report.summary_lines()[0]

    def test_trial_graph_deterministic(self):
        assert describe_graph(trial_graph(7)) == describe_graph(trial_graph(7))

    def test_runner_serial_parallel_agree(self):
        assert runner_oracles(seed=3, tasks=3) == []


class TestTrialFamilies:
    def test_default_families(self):
        assert DEFAULT_FAMILIES == ("acyclic", "broadcast", "cyclic")

    def test_broadcast_family_clean(self):
        report = run_check(
            trials=3, seed=0, inject=False, families=("broadcast",)
        )
        assert report.ok, report.summary_lines()

    def test_cyclic_family_clean(self):
        report = run_check(
            trials=3, seed=0, inject=False, families=("cyclic",)
        )
        assert report.ok, report.summary_lines()

    def test_all_families_cycle(self):
        report = run_check(trials=3, seed=1, inject=False)
        assert report.ok, report.summary_lines()

    def test_unknown_family_rejected(self):
        with pytest.raises(ValueError):
            run_check(trials=1, seed=0, families=("bogus",))

    def test_empty_families_rejected(self):
        with pytest.raises(ValueError):
            run_check(trials=1, seed=0, families=())

    def test_trial_generators_deterministic(self):
        assert describe_graph(broadcast_trial_graph(5)) == (
            describe_graph(broadcast_trial_graph(5))
        )
        assert describe_graph(cyclic_trial_graph(5)) == (
            describe_graph(cyclic_trial_graph(5))
        )
        assert broadcast_trial_graph(5).has_broadcasts()
        assert not cyclic_trial_graph(5).is_acyclic()

    def test_sharing_win_oracle_on_trial_graphs(self):
        # The broadcast family's signature oracle: the shared-buffer
        # model never costs more than the k-parallel-edges model.
        for graph_seed in (0, 1, 2):
            art = build_artifacts(
                broadcast_trial_graph(graph_seed), method="rpmc"
            )
            assert broadcast_oracles(art) == []

    def test_cyclic_oracles_on_trial_graphs(self):
        for graph_seed in (0, 1, 2):
            assert cyclic_oracles(cyclic_trial_graph(graph_seed)) == []

    def test_broadcast_oracles_skip_plain_graphs(self):
        art = build_artifacts(chain(3))
        assert broadcast_oracles(art) == []


class TestReferenceImplementations:
    def test_full_trace_matches_balance(self):
        g = chain(3)
        art = build_artifacts(g)
        snapshots = full_trace(g, art.result.sdppo_schedule)
        # Initial state plus one snapshot per firing; final state drained.
        firings = sum(art.q.values())
        assert len(snapshots) == firings + 1
        assert all(count == 0 for count in snapshots[-1].values())

    def test_reference_max_tokens_simple_chain(self):
        g = chain(2)
        art = build_artifacts(g)
        peaks = reference_max_tokens(g, art.result.sdppo_schedule)
        assert peaks == {("a0", "a1", 0): 1}

    def test_peak_token_words_counts_words(self):
        g = chain(2, token_size=3)
        art = build_artifacts(g)
        assert reference_peak_token_words(g, art.result.sdppo_schedule) == 3


class TestFaultInjection:
    def test_all_mutation_classes_caught(self):
        report = run_injection_selftest(seed=0)
        assert {o.mutation for o in report.outcomes} == set(MUTATION_CLASSES)
        missed = [o for o in report.outcomes if not o.caught]
        assert not missed, [
            f"{o.mutation}: {o.detail}" for o in missed
        ]
        assert report.all_caught

    def test_at_least_five_mutation_classes(self):
        assert len(MUTATION_CLASSES) >= 5

    def test_new_family_mutations_registered(self):
        assert "broadcast_stop" in MUTATION_CLASSES
        assert "cyclic_schedule" in MUTATION_CLASSES

    def test_blind_oracle_fails_the_selftest(self, monkeypatch):
        # A mutation nothing catches must make the report (and therefore
        # `repro check --inject`) fail — the self-test cannot go blind
        # silently.
        from repro.check import fault_injection

        def blind(art, rng):
            return InjectionOutcome(
                mutation="blind", graph_seed=art.seed,
                caught=False, detail="no oracle looks at this artifact",
            )

        mutations = dict(MUTATION_CLASSES)
        mutations["blind"] = blind
        monkeypatch.setattr(fault_injection, "MUTATION_CLASSES", mutations)
        report = run_injection_selftest(seed=0)
        assert not report.all_caught
        full = run_check(trials=1, seed=0, inject=True)
        assert not full.ok

    def test_inapplicable_class_is_reported_missed(self, monkeypatch):
        from repro.check import fault_injection

        monkeypatch.setattr(
            fault_injection, "MUTATION_CLASSES",
            {"never": lambda art, rng: None},
        )
        report = run_injection_selftest(seed=0, max_attempts=2)
        assert not report.all_caught
        assert "no applicable instance" in report.outcomes[0].detail


class TestShrinker:
    def test_shrinks_to_minimal_edge(self):
        g = chain(5, token_size=2, delay=1)
        shrunk = shrink_graph(g, lambda c: c.num_edges >= 1)
        assert shrunk.num_actors == 2
        assert shrunk.num_edges == 1
        e = shrunk.edge_list()[0]
        assert (e.production, e.consumption) == (1, 1)
        assert e.delay == 0
        assert e.token_size == 1

    def test_preserves_predicate(self):
        g = trial_graph(42)
        target = max(
            (e.production for e in g.edge_list()), default=1
        )

        def pred(c):
            return any(e.production == target for e in c.edge_list())

        shrunk = shrink_graph(g, pred)
        assert pred(shrunk)
        assert shrunk.num_actors <= g.num_actors

    def test_non_failing_graph_unchanged(self):
        g = chain(3)
        assert shrink_graph(g, lambda c: False) is g

    def test_raising_predicate_treated_as_pass(self):
        g = chain(3)

        calls = {"n": 0}

        def flaky(c):
            calls["n"] += 1
            if calls["n"] == 1:
                return True  # original graph "fails"
            raise RuntimeError("candidate crashed the pipeline")

        # Every candidate crashes, so nothing can be removed.
        shrunk = shrink_graph(g, flaky)
        assert describe_graph(shrunk) == describe_graph(g)

    def test_shrinks_random_graph_for_structural_predicate(self):
        g = random_sdf_graph(8, seed=13)
        shrunk = shrink_graph(g, lambda c: c.num_actors >= 3)
        assert shrunk.num_actors == 3
