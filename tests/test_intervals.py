"""Tests for buffer lifetime extraction (section 8) against simulation.

The extraction computes lifetimes analytically on the schedule tree; the
simulator measures them by running the schedule.  Episode counts, sizes,
and (critically) pairwise disjointness must agree — a lifetime pair the
analysis calls disjoint but the execution overlaps would corrupt memory.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.exceptions import ScheduleError
from repro.lifetimes.intervals import extract_lifetimes
from repro.lifetimes.schedule_tree import ScheduleTree
from repro.sdf.graph import SDFGraph
from repro.sdf.random_graphs import random_chain_graph, random_sdf_graph
from repro.sdf.repetitions import repetitions_vector, total_tokens_exchanged
from repro.sdf.schedule import parse_schedule
from repro.sdf.simulate import coarse_live_intervals, simulate_schedule
from repro.scheduling.dppo import dppo
from repro.scheduling.sdppo import sdppo


def fig17_setup():
    """A graph + schedule realizing figure 15/17: 2(2(A B C D) E).

    With an edge (A, B), buffer AB has start 0, dur 2, a = (4, 9),
    loops (2, 2) — live [0,2], [4,6], [9,11], [13,15].
    """
    g = SDFGraph()
    g.add_actors("ABCDE")
    g.add_edge("A", "B", 1, 1)
    schedule = parse_schedule("(2(2A B C D)E)")
    return g, schedule


class TestFigure17:
    def test_ab_lifetime_matches_paper(self):
        g, schedule = fig17_setup()
        lifetimes = extract_lifetimes(g, schedule)
        ab = lifetimes.lifetimes[("A", "B", 0)]
        assert ab.start == 0
        assert ab.duration == 2
        assert ab.periods == ((4, 2), (9, 2))
        assert list(ab.intervals()) == [(0, 2), (4, 6), (9, 11), (13, 15)]


class TestBasicExtraction:
    def test_simple_chain_flat(self):
        g = SDFGraph()
        g.add_actors("ABC")
        g.add_edge("A", "B", 2, 1)
        g.add_edge("B", "C", 1, 3)
        schedule = parse_schedule("(3A)(6B)(2C)")
        ls = extract_lifetimes(g, schedule)
        ab = ls.lifetimes[("A", "B", 0)]
        assert ab.size == 6
        assert ab.start == 0
        assert ab.periods == ()
        bc = ls.lifetimes[("B", "C", 0)]
        assert bc.size == 6
        assert bc.start == 1
        assert bc.duration == 2  # leaf B slot through leaf C slot

    def test_nested_chain_sizes(self):
        g = SDFGraph()
        g.add_actors("ABC")
        g.add_edge("A", "B", 2, 1)
        g.add_edge("B", "C", 1, 3)
        schedule = parse_schedule("(3A(2B))(2C)")
        ls = extract_lifetimes(g, schedule)
        ab = ls.lifetimes[("A", "B", 0)]
        assert ab.size == 2          # per episode: one A firing
        assert ab.num_occurrences == 3
        bc = ls.lifetimes[("B", "C", 0)]
        assert bc.size == 6

    def test_token_size_scales(self):
        g = SDFGraph()
        g.add_actors("AB")
        g.add_edge("A", "B", 2, 1, token_size=4)
        ls = extract_lifetimes(g, parse_schedule("A(2B)"))
        assert ls.lifetimes[("A", "B", 0)].size == 8

    def test_delayed_edge_whole_period(self):
        g = SDFGraph()
        g.add_actors("AB")
        g.add_edge("A", "B", 1, 1, delay=2)
        ls = extract_lifetimes(g, parse_schedule("A B"))
        lt = ls.lifetimes[("A", "B", 0)]
        assert lt.start == 0
        assert lt.duration == ls.total_span
        assert lt.size == 1 + 2  # transfer + delay

    def test_missing_actor_rejected(self):
        g = SDFGraph()
        g.add_actors("AB")
        g.add_edge("A", "B", 1, 1)
        with pytest.raises(ScheduleError):
            extract_lifetimes(g, parse_schedule("A"))

    def test_non_topological_schedule_rejected(self):
        g = SDFGraph()
        g.add_actors("AB")
        g.add_edge("A", "B", 1, 1)
        with pytest.raises(ScheduleError):
            extract_lifetimes(g, parse_schedule("B A"))

    def test_total_size(self):
        g = SDFGraph()
        g.add_actors("ABC")
        g.add_edge("A", "B", 1, 1)
        g.add_edge("B", "C", 1, 1)
        ls = extract_lifetimes(g, parse_schedule("A B C"))
        assert ls.total_size() == 2


def _episode_ground_truth(graph, schedule):
    """(episode count, episode size) per delay-free edge, by simulation."""
    trace = simulate_schedule(graph, schedule)
    intervals = coarse_live_intervals(graph, schedule)
    result = {}
    for e in graph.edges():
        if e.delay:
            continue
        sizes = []
        for s, t in intervals[e.key]:
            produced = sum(
                e.production
                for step in range(s, t)
                if trace.firings[step] == e.source
            )
            sizes.append((trace.counts[s][e.key] + produced) * e.token_size)
        result[e.key] = (len(intervals[e.key]), max(sizes) if sizes else 0)
    return result


class TestAgainstSimulation:
    """Analytical lifetimes must match measured coarse episodes."""

    @pytest.mark.parametrize("seed", range(10))
    def test_chain_episode_counts_and_sizes(self, seed):
        g = random_chain_graph(6, seed=seed)
        schedule = dppo(g, g.chain_order()).schedule
        ls = extract_lifetimes(g, schedule)
        truth = _episode_ground_truth(g, schedule)
        for key, (count, size) in truth.items():
            lt = ls.lifetimes[key]
            assert lt.num_occurrences == count, f"{key}: episode count"
            assert lt.size == size, f"{key}: episode size"

    @pytest.mark.parametrize("seed", range(10))
    def test_dag_episode_counts_and_sizes(self, seed):
        g = random_sdf_graph(9, seed=seed)
        schedule = sdppo(g, g.topological_order()).schedule
        ls = extract_lifetimes(g, schedule)
        truth = _episode_ground_truth(g, schedule)
        for key, (count, size) in truth.items():
            lt = ls.lifetimes[key]
            assert lt.num_occurrences == count, f"{key}: episode count"
            assert lt.size == size, f"{key}: episode size"

    @pytest.mark.parametrize("seed", range(8))
    def test_claimed_disjointness_is_safe(self, seed):
        """If the periodic model says two buffers never overlap, their
        simulated firing-time episodes must not overlap either."""
        g = random_sdf_graph(8, seed=1000 + seed)
        schedule = sdppo(g, g.topological_order()).schedule
        ls = extract_lifetimes(g, schedule)
        sim = coarse_live_intervals(g, schedule)
        tree = ls.tree

        # Map schedule steps to firing indices: replay the tree.
        firing_of_step = []
        def walk(node):
            if node.is_leaf():
                firing_of_step.append((node.actor, node.residual))
                return
            for _ in range(node.loop):
                walk(node.left)
                walk(node.right)
        walk(tree.root)
        # step s covers firings [cum[s], cum[s+1])
        cum = [0]
        for _, count in firing_of_step:
            cum.append(cum[-1] + count)

        edges = [e for e in g.edges() if e.delay == 0]
        for i in range(len(edges)):
            for j in range(i + 1, len(edges)):
                a, b = edges[i], edges[j]
                la, lb = ls.lifetimes[a.key], ls.lifetimes[b.key]
                if la.overlaps(lb):
                    continue
                # Claimed disjoint: simulated firing intervals must be too.
                for sa, ta in sim[a.key]:
                    for sb, tb in sim[b.key]:
                        assert ta <= sb or tb <= sa, (
                            f"{la.name} and {lb.name} claimed disjoint but "
                            f"simulate as overlapping ({sa},{ta}) ({sb},{tb})"
                        )
