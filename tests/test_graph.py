"""Tests for the SDF graph model (repro.sdf.graph)."""

import pytest

from repro.exceptions import GraphStructureError
from repro.sdf.graph import Actor, Edge, SDFGraph


def simple_chain():
    g = SDFGraph("chain")
    g.add_actors("ABC")
    g.add_edge("A", "B", 2, 1)
    g.add_edge("B", "C", 1, 3)
    return g


class TestActor:
    def test_requires_name(self):
        with pytest.raises(GraphStructureError):
            Actor("")

    def test_rejects_negative_execution_time(self):
        with pytest.raises(GraphStructureError):
            Actor("A", execution_time=-1)

    def test_default_execution_time(self):
        assert Actor("A").execution_time == 1


class TestEdge:
    def test_rejects_nonpositive_rates(self):
        with pytest.raises(GraphStructureError):
            Edge("A", "B", 0, 1)
        with pytest.raises(GraphStructureError):
            Edge("A", "B", 1, -2)

    def test_rejects_negative_delay(self):
        with pytest.raises(GraphStructureError):
            Edge("A", "B", 1, 1, delay=-1)

    def test_rejects_nonpositive_token_size(self):
        with pytest.raises(GraphStructureError):
            Edge("A", "B", 1, 1, token_size=0)

    def test_self_loop_detection(self):
        assert Edge("A", "A", 1, 1, delay=1).is_self_loop()
        assert not Edge("A", "B", 1, 1).is_self_loop()

    def test_key_includes_index(self):
        assert Edge("A", "B", 1, 1, index=2).key == ("A", "B", 2)


class TestConstruction:
    def test_duplicate_actor_rejected(self):
        g = SDFGraph()
        g.add_actor("A")
        with pytest.raises(GraphStructureError):
            g.add_actor("A")

    def test_edge_requires_existing_actors(self):
        g = SDFGraph()
        g.add_actor("A")
        with pytest.raises(GraphStructureError):
            g.add_edge("A", "B", 1, 1)

    def test_parallel_edges_get_indices(self):
        g = SDFGraph()
        g.add_actors("AB")
        e0 = g.add_edge("A", "B", 1, 1)
        e1 = g.add_edge("A", "B", 2, 2)
        assert e0.index == 0
        assert e1.index == 1
        assert g.num_edges == 2
        assert g.edge("A", "B", 1).production == 2

    def test_add_chain(self):
        g = SDFGraph()
        edges = g.add_chain(["X", "Y", "Z"], [(2, 3), (1, 1)], delays=[1, 0])
        assert g.num_actors == 3
        assert edges[0].delay == 1
        assert edges[1].production == 1

    def test_add_chain_length_mismatch(self):
        g = SDFGraph()
        with pytest.raises(GraphStructureError):
            g.add_chain(["X", "Y"], [])


class TestQueries:
    def test_len_and_contains(self):
        g = simple_chain()
        assert len(g) == 3
        assert "A" in g
        assert "Z" not in g

    def test_successors_predecessors(self):
        g = simple_chain()
        assert g.successors("A") == ["B"]
        assert g.predecessors("C") == ["B"]
        assert g.predecessors("A") == []

    def test_sources_and_sinks(self):
        g = simple_chain()
        assert g.sources() == ["A"]
        assert g.sinks() == ["C"]

    def test_unknown_actor_raises(self):
        g = simple_chain()
        with pytest.raises(GraphStructureError):
            g.actor("Q")
        with pytest.raises(GraphStructureError):
            g.edge("A", "C")

    def test_has_edge(self):
        g = simple_chain()
        assert g.has_edge("A", "B")
        assert not g.has_edge("A", "C")

    def test_successors_deduplicate_parallel_edges(self):
        g = SDFGraph()
        g.add_actors("AB")
        g.add_edge("A", "B", 1, 1)
        g.add_edge("A", "B", 2, 2)
        assert g.successors("A") == ["B"]


class TestStructure:
    def test_is_connected(self):
        g = simple_chain()
        assert g.is_connected()
        g.add_actor("isolated")
        assert not g.is_connected()

    def test_empty_graph_connected(self):
        assert SDFGraph().is_connected()

    def test_is_acyclic(self):
        g = simple_chain()
        assert g.is_acyclic()
        g.add_edge("C", "A", 1, 1)
        assert not g.is_acyclic()

    def test_is_homogeneous(self):
        g = SDFGraph()
        g.add_actors("AB")
        g.add_edge("A", "B", 2, 2)
        assert g.is_homogeneous()
        g.add_edge("A", "B", 1, 3)
        assert not g.is_homogeneous()

    def test_chain_order(self):
        g = simple_chain()
        assert g.chain_order() == ["A", "B", "C"]
        assert g.is_chain()

    def test_chain_order_rejects_branching(self):
        g = simple_chain()
        g.add_actor("D")
        g.add_edge("A", "D", 1, 1)
        assert g.chain_order() is None

    def test_chain_order_single_actor(self):
        g = SDFGraph()
        g.add_actor("A")
        assert g.chain_order() == ["A"]

    def test_topological_order_deterministic(self):
        g = SDFGraph()
        g.add_actors("ABCD")
        g.add_edge("A", "C", 1, 1)
        g.add_edge("B", "C", 1, 1)
        g.add_edge("C", "D", 1, 1)
        assert g.topological_order() == ["A", "B", "C", "D"]

    def test_topological_order_cycle_raises(self):
        g = simple_chain()
        g.add_edge("C", "A", 1, 1)
        with pytest.raises(GraphStructureError):
            g.topological_order()


class TestDerivedGraphs:
    def test_subgraph(self):
        g = simple_chain()
        sub = g.subgraph(["A", "B"])
        assert sub.num_actors == 2
        assert sub.num_edges == 1
        assert sub.edge("A", "B").production == 2

    def test_subgraph_unknown_actor(self):
        g = simple_chain()
        with pytest.raises(GraphStructureError):
            g.subgraph(["A", "Q"])

    def test_copy_is_independent(self):
        g = simple_chain()
        c = g.copy()
        c.add_actor("D")
        assert "D" not in g

    def test_reversed(self):
        g = simple_chain()
        r = g.reversed()
        assert r.has_edge("B", "A")
        e = r.edge("B", "A")
        assert (e.production, e.consumption) == (1, 2)

    def test_copy_preserves_execution_time(self):
        g = SDFGraph()
        g.add_actor("A", execution_time=7)
        assert g.copy().actor("A").execution_time == 7
