"""End-to-end checks of the C emitter against a real compiler.

Complements :mod:`tests.test_codegen` (which exercises the gcc-compiled
self-check on the Table 1 systems): here the emitted source itself is
the object under test.  The pool declaration and every per-buffer
``#define`` must agree exactly with what first-fit allocated, and the
generated program for the two narrative systems of the paper — CD-DAT
(section 3) and the satellite receiver (section 9) — must compile
cleanly under the platform's default ``cc`` and self-check.
"""

import re
import shutil
import subprocess

import pytest

from repro.apps import cd_to_dat, satellite_receiver
from repro.codegen.c_emitter import emit_c
from repro.scheduling.pipeline import implement

requires_cc = pytest.mark.skipif(
    shutil.which("cc") is None, reason="no system C compiler (cc)"
)


def _flow(graph):
    result = implement(graph, "apgan")
    return result, emit_c(
        graph, result.lifetimes, result.allocation, instrument=True, periods=2
    )


def _compile_and_run(code, tmp_path, name):
    source = tmp_path / f"{name}.c"
    source.write_text(code)
    exe = tmp_path / name
    build = subprocess.run(
        ["cc", "-O2", "-Wall", "-Werror", "-o", str(exe), str(source)],
        capture_output=True,
        text=True,
    )
    assert build.returncode == 0, build.stderr
    return subprocess.run(
        [str(exe)], capture_output=True, text=True, timeout=60
    )


class TestEmittedSourceMatchesAllocation:
    """The emitted constants are the first-fit allocation, verbatim."""

    @pytest.mark.parametrize("make", [cd_to_dat, satellite_receiver])
    def test_pool_size_matches_first_fit_total(self, make):
        graph = make()
        result, code = _flow(graph)
        match = re.search(r"static token_t memory\[(\d+)\];", code)
        assert match is not None
        assert int(match.group(1)) == max(result.allocation.total, 1)

    @pytest.mark.parametrize("make", [cd_to_dat, satellite_receiver])
    def test_buffer_offsets_and_sizes_match(self, make):
        graph = make()
        result, code = _flow(graph)
        defines = {
            name: (int(offset), int(words))
            for name, offset, words in re.findall(
                r"#define (BUF_\w+) \(memory \+ (\d+)\)\s*/\* (\d+) words",
                code,
            )
        }
        assert len(defines) == graph.num_edges
        for edge in graph.edge_list():
            lifetime = result.lifetimes.lifetimes[edge.key]
            macro = f"BUF_{edge.source}_{edge.sink}"
            if edge.index:
                macro += f"_{edge.index}"
            offset, words = defines[macro.upper()]
            assert offset == result.allocation.offsets[lifetime.name]
            assert words == lifetime.size
            assert offset + words <= result.allocation.total

    def test_buffers_fit_inside_pool_without_overlap_where_forbidden(self):
        graph = satellite_receiver()
        result, _ = _flow(graph)
        # Sanity on the allocation the defines were checked against:
        # every buffer window lies inside the declared pool.
        for lifetime in result.lifetimes.as_list():
            offset = result.allocation.offsets[lifetime.name]
            assert 0 <= offset
            assert offset + lifetime.size <= result.allocation.total


@requires_cc
class TestCompilesUnderCc:
    """CD-DAT and satrec compile with ``cc -Wall -Werror`` and self-check."""

    @pytest.mark.parametrize(
        "name,make", [("cddat", cd_to_dat), ("satrec", satellite_receiver)]
    )
    def test_self_check_passes(self, name, make, tmp_path):
        graph = make()
        _, code = _flow(graph)
        run = _compile_and_run(code, tmp_path, name)
        assert run.returncode == 0, run.stderr
        assert "SELFCHECK OK" in run.stdout
