"""End-to-end tests of the figure 21 flow (repro.scheduling.pipeline)."""

import pytest

from repro.exceptions import GraphStructureError
from repro.sdf.graph import SDFGraph
from repro.sdf.random_graphs import random_sdf_graph
from repro.sdf.simulate import validate_schedule
from repro.scheduling.pipeline import implement, implement_best
from repro.allocation.verify import verify_allocation
from repro.codegen.vm import run_shared_memory_check
from repro.apps import table1_graph

SMALL_SYSTEMS = [
    "qmf23_2d", "qmf12_2d", "satrec", "16qamModem",
    "4pamxmitrec", "blockVox", "overAddFFT", "phasedArray", "nqmf23_4d",
]


class TestInvariants:
    @pytest.mark.parametrize("name", SMALL_SYSTEMS)
    def test_practical_systems_all_invariants(self, name):
        g = table1_graph(name)
        best = implement_best(g)
        for result in (best.rpmc, best.apgan):
            # Schedules are valid single appearance schedules.
            validate_schedule(g, result.dppo_schedule)
            validate_schedule(g, result.sdppo_schedule)
            assert result.sdppo_schedule.is_single_appearance()
            # Non-shared DPPO cost cannot beat the BMLB.
            assert result.dppo_cost >= result.bmlb
            # The allocation is feasible and bounded below by the
            # optimistic clique weight.
            buffers = result.lifetimes.as_list()
            verify_allocation(buffers, result.allocation)
            assert result.allocation.total >= result.mco
            # mco <= mcp always.
            assert result.mco <= result.mcp
            # Sharing never loses to the non-shared implementation.
            assert result.best_shared_total <= result.dppo_cost

    @pytest.mark.parametrize("name", SMALL_SYSTEMS)
    def test_shared_memory_execution(self, name):
        """The allocation must survive actual execution (two periods)."""
        g = table1_graph(name)
        result = implement(g, "rpmc")
        run_shared_memory_check(g, result.lifetimes, result.allocation, periods=2)

    @pytest.mark.parametrize("seed", range(12))
    def test_random_graphs_all_invariants(self, seed):
        g = random_sdf_graph(12, seed=seed)
        result = implement(g, "rpmc", seed=seed)
        validate_schedule(g, result.sdppo_schedule)
        buffers = result.lifetimes.as_list()
        verify_allocation(buffers, result.allocation)
        assert result.allocation.total >= result.mco
        run_shared_memory_check(g, result.lifetimes, result.allocation, periods=2)


class TestMethods:
    def test_unknown_method_rejected(self):
        g = random_sdf_graph(5, seed=0)
        with pytest.raises(GraphStructureError):
            implement(g, "magic")

    def test_explicit_order(self):
        g = random_sdf_graph(8, seed=1)
        order = g.topological_order()
        result = implement(g, order=order)
        assert result.method == "given"
        assert result.order == order

    def test_natural_method(self):
        g = random_sdf_graph(8, seed=1)
        result = implement(g, "natural")
        assert result.order == g.topological_order()

    def test_chain_uses_precise_dp(self):
        g = SDFGraph()
        g.add_actors("ABC")
        g.add_edge("A", "B", 4, 2)
        g.add_edge("B", "C", 2, 4)
        with_dp = implement(g, use_chain_dp=True)
        without = implement(g, use_chain_dp=False)
        # Both valid; the precise DP can only do better or equal.
        assert with_dp.best_shared_total <= without.best_shared_total + 1


class TestBestResult:
    def test_improvement_formula(self):
        g = table1_graph("qmf23_2d")
        best = implement_best(g)
        expected = 100.0 * (best.best_nonshared - best.best_shared) / best.best_nonshared
        assert abs(best.improvement_percent - expected) < 1e-9

    def test_practical_improvement_band(self):
        """Every practical system improves by at least 25% (the paper's
        smallest practical improvement is ~31%)."""
        for name in ("qmf23_2d", "satrec", "blockVox", "overAddFFT"):
            best = implement_best(table1_graph(name))
            assert best.improvement_percent >= 25.0, name
