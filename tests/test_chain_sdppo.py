"""Tests for the precise chain DP with cost triples (section 6)."""

import pytest

from repro.exceptions import GraphStructureError
from repro.sdf.graph import SDFGraph
from repro.sdf.random_graphs import random_chain_graph
from repro.sdf.simulate import max_live_tokens, validate_schedule
from repro.scheduling.chain_sdppo import (
    ChainSDPPOResult,
    CostTriple,
    chain_sdppo,
    combine_triples,
)
from repro.scheduling.sdppo import sdppo


class TestCostTriple:
    def test_dominates(self):
        assert CostTriple(1, 2, 3).dominates(CostTriple(2, 2, 3))
        assert not CostTriple(1, 2, 3).dominates(CostTriple(1, 2, 3))
        assert not CostTriple(1, 5, 3).dominates(CostTriple(2, 2, 3))

    def test_as_tuple(self):
        assert CostTriple(1, 2, 3).as_tuple() == (1, 2, 3)


class TestFigure6:
    """The paper's worked example: the triples of figure 6."""

    def test_leaf_pair_triples(self):
        zero = CostTriple(0, 0, 0)
        ab = combine_triples(zero, zero, 20, 1, 1, True, True)
        assert ab == CostTriple(20, 20, 20)
        cd = combine_triples(zero, zero, 7, 1, 1, True, True)
        assert cd == CostTriple(7, 7, 7)

    def test_abcd_triple(self):
        ab = CostTriple(20, 20, 20)
        cd = CostTriple(7, 7, 7)
        abcd = combine_triples(ab, cd, 84, 2, 2)
        assert abcd == CostTriple(104, 104, 91)

    def test_total_cost_127(self):
        """The heuristic EQ 5 would report 140; the true cost is 127."""
        abcd = CostTriple(104, 104, 91)
        ef = CostTriple(8, 8, 8)
        total = combine_triples(abcd, ef, 36, 1, 1)
        assert total.mid == 127


class TestCombineRules:
    def test_case1_ratios_one(self):
        left = CostTriple(2, 10, 4)
        right = CostTriple(3, 9, 5)
        t = combine_triples(left, right, 6, 1, 1)
        # t2 = max(l2, l3 + c, r1 + c, r2) = max(10, 10, 9, 9) = 10
        assert t.mid == 10
        assert t.left == 2
        assert t.right == 5

    def test_case2_left_ratio_two(self):
        left = CostTriple(2, 10, 4)
        right = CostTriple(3, 9, 5)
        t = combine_triples(left, right, 6, 2, 1)
        # t1 = max(l1 + c, l2) = max(8, 10) = 10
        assert t.left == 10
        # t2 = max(l2 + c, l3 + c, r1 + c, r2) = 16
        assert t.mid == 16

    def test_case3_left_ratio_three(self):
        left = CostTriple(2, 10, 4)
        right = CostTriple(3, 9, 5)
        t = combine_triples(left, right, 6, 3, 1)
        assert t.left == 16  # l2 + c
        assert t.mid == 16

    def test_mirror_right_ratio_two(self):
        left = CostTriple(2, 10, 4)
        right = CostTriple(3, 9, 5)
        t = combine_triples(left, right, 6, 1, 2)
        assert t.right == max(5 + 6, 9)
        assert t.mid == max(10, 4 + 6, 3 + 6, 9 + 6)

    def test_mirror_right_ratio_large(self):
        left = CostTriple(2, 10, 4)
        right = CostTriple(3, 9, 5)
        t = combine_triples(left, right, 6, 1, 5)
        assert t.right == 9 + 6

    def test_invalid_ratio_rejected(self):
        with pytest.raises(GraphStructureError):
            combine_triples(CostTriple(0, 0, 0), CostTriple(0, 0, 0), 1, 0, 1)

    def test_components_never_exceed_mid(self):
        t = combine_triples(CostTriple(5, 5, 5), CostTriple(1, 1, 1), 2, 3, 3)
        assert t.left <= t.mid
        assert t.right <= t.mid


class TestChainDP:
    def test_requires_chain(self):
        g = SDFGraph()
        g.add_actors("ABC")
        g.add_edge("A", "B", 1, 1)
        g.add_edge("A", "C", 1, 1)
        with pytest.raises(GraphStructureError):
            chain_sdppo(g)

    def test_rejects_wrong_order(self):
        g = random_chain_graph(4, seed=0)
        with pytest.raises(GraphStructureError):
            chain_sdppo(g, order=list(reversed(g.chain_order())))

    def test_rejects_bad_max_entries(self):
        g = random_chain_graph(4, seed=0)
        with pytest.raises(GraphStructureError):
            chain_sdppo(g, max_entries=0)

    @pytest.mark.parametrize("seed", range(10))
    def test_schedule_valid(self, seed):
        g = random_chain_graph(7, seed=seed)
        result = chain_sdppo(g)
        validate_schedule(g, result.schedule)
        assert result.schedule.is_single_appearance()

    @pytest.mark.parametrize("seed", range(10))
    def test_estimate_tracks_ground_truth(self, seed):
        """The triple estimate is a tight lower estimate of the
        simulated coarse-model peak of its own schedule.

        The (left, cost, right) abstraction summarizes a subchain's
        overlap behaviour in three numbers, so overlaps spanning three
        or more nesting levels can escape it — but never by much (the
        paper reports <0.5% average deviation on random graphs; we
        allow 15% on these adversarial small chains and require the
        estimate never to exceed the truth).
        """
        g = random_chain_graph(7, seed=seed)
        precise = chain_sdppo(g)
        actual = max_live_tokens(g, precise.schedule)
        assert precise.cost <= actual
        assert precise.cost >= 0.85 * actual

    @pytest.mark.parametrize("seed", range(6))
    def test_pareto_set_bounded(self, seed):
        g = random_chain_graph(8, seed=seed)
        result = chain_sdppo(g, max_entries=3)
        assert 1 <= len(result.pareto) <= 3

    def test_two_actor_chain(self):
        g = SDFGraph()
        g.add_actors("AB")
        g.add_edge("A", "B", 4, 6)
        result = chain_sdppo(g)
        assert result.cost == 12
        assert max_live_tokens(g, result.schedule) == 12
