"""Tests for memory-constrained vectorization and blocked execution.

Covers the loop-fission pass (``repro.scheduling.vectorize``) — the
safety rule, the budget loop's edge cases (zero budget, unconstrained
fixed point, backward-edge declines, non-SAS fallbacks), block
accounting — the ``backend="batched"`` contract (bit-identical
observables *and* byte-identical errors), the block-at-a-time
``BatchedVM`` against the scalar VM, and the vectorized pipeline path
(``implement(..., vectorize=True)``).
"""

import pytest

from repro.apps import cd_to_dat
from repro.codegen.batched_vm import BatchedVM
from repro.codegen.vm import SharedMemoryVM, run_shared_memory_check
from repro.exceptions import ScheduleError
from repro.scheduling.pipeline import implement
from repro.scheduling.vectorize import (
    blocked_cost,
    dispatch_blocks,
    fission_candidates,
    fission_safe,
    vectorize_schedule,
)
from repro.sdf.graph import SDFGraph
from repro.sdf.random_graphs import (
    random_broadcast_sdf_graph,
    random_sdf_graph,
)
from repro.sdf.repetitions import repetitions_vector
from repro.sdf.schedule import Loop, parse_schedule
from repro.sdf.simulate import validate_schedule


def chain_graph():
    """q = A:3, B:6, C:2 — the module docstring's running example."""
    g = SDFGraph("chain")
    g.add_actors("ABC")
    g.add_edge("A", "B", 2, 1)
    g.add_edge("B", "C", 1, 3)
    return g


def feedback_graph():
    """Two-actor loop living on 2 initial tokens; q = A:1, B:2."""
    g = SDFGraph("fb")
    g.add_actors("AB")
    g.add_edge("A", "B", 2, 1)
    g.add_edge("B", "A", 1, 2, delay=2)
    return g


def first_loop(text):
    node = parse_schedule(text).body[0]
    assert isinstance(node, Loop)
    return node


class TestFissionSafety:
    def test_forward_edges_are_safe(self):
        g = chain_graph()
        assert fission_safe(g, first_loop("(3A(2B))"))
        assert fission_safe(g, first_loop("(2(3A)(6B)(2C))"))

    def test_backward_edge_declines(self):
        # B->A is lexically backward inside (2 A B): hoisting A's two
        # iterations ahead of B would drain the delay dry.
        g = feedback_graph()
        assert not fission_safe(g, first_loop("(2A(2B))"))

    def test_duplicate_actor_declines(self):
        g = chain_graph()
        assert not fission_safe(g, first_loop("(2A B A)"))

    def test_edge_crossing_loop_boundary_is_ignored(self):
        # Only edges with BOTH endpoints inside the body constrain the
        # fission; C is outside (3A(2B)) so A->B is the one that counts.
        g = chain_graph()
        loop = first_loop("(3A(2B))")
        assert fission_safe(g, loop)


class TestDispatchBlocks:
    def test_nested_schedule(self):
        blocks, firings, factors = dispatch_blocks(
            parse_schedule("(3A(2B))(2C)")
        )
        # "(2B)" and "(2C)" are single counted firings, not loops: the
        # parser folds them, so one visit dispatches a 2-firing block.
        assert (blocks, firings) == (7, 11)
        assert factors == {"A": 1, "B": 2, "C": 2}

    def test_flat_sas(self):
        blocks, firings, factors = dispatch_blocks(
            parse_schedule("(3A)(6B)(2C)")
        )
        assert (blocks, firings) == (3, 11)
        assert factors == {"A": 3, "B": 6, "C": 2}


class TestFissionCandidates:
    def test_docstring_example(self):
        g = chain_graph()
        texts = {
            str(c)
            for c in fission_candidates(g, parse_schedule("(3A(2B))(2C)"))
        }
        # Fissioning the outer loop hoists A and B; the inner (2B) and
        # the unit-count (2C) wrapper offer nothing further on their own.
        assert "(3A)(6B)(2C)" in texts

    def test_backward_edge_has_no_candidates(self):
        g = feedback_graph()
        assert fission_candidates(g, parse_schedule("(2A(2B))")) == []


class TestVectorizePass:
    def test_unconstrained_reaches_flat_sas(self):
        g = chain_graph()
        vec = vectorize_schedule(g, parse_schedule("(3A(2B))(2C)"))
        assert str(vec.schedule) == "(3A)(6B)(2C)"
        assert vec.block_factors == repetitions_vector(g)
        assert (vec.blocks, vec.firings) == (3, 11)
        assert vec.steps >= 1
        assert vec.amortization > vec.baseline_amortization

    def test_zero_budget_is_identity(self):
        g = chain_graph()
        base = parse_schedule("(3A(2B))(2C)")
        vec = vectorize_schedule(g, base, memory_budget=0)
        assert str(vec.schedule) == str(base)
        assert vec.steps == 0
        assert vec.cost == vec.baseline_cost

    def test_backward_edge_declines_cleanly(self):
        g = feedback_graph()
        base = parse_schedule("(2A(2B))")
        vec = vectorize_schedule(g, base)
        assert str(vec.schedule) == str(base)
        assert vec.steps == 0
        assert vec.cost == vec.baseline_cost is not None

    def test_non_sas_schedule_falls_back_with_cost_none(self):
        g = chain_graph()
        base = parse_schedule("(3A(2B))(2C)(1A)")  # A appears twice
        vec = vectorize_schedule(g, base)
        assert vec.cost is None and vec.baseline_cost is None
        assert str(vec.schedule) == str(base.normalized())
        assert vec.steps == 0

    def test_delayed_forward_edge_still_blocks(self):
        g = SDFGraph("dly")
        g.add_actors("ABC")
        g.add_edge("A", "B", 2, 1, delay=1)
        g.add_edge("B", "C", 1, 3)
        result = implement(g, "natural", verify=False)
        vec = vectorize_schedule(g, result.sdppo_schedule)
        validate_schedule(g, vec.schedule)
        assert vec.blocks <= vec.baseline_blocks

    def test_cddat_budget_sweep_is_monotone(self):
        g = cd_to_dat()
        result = implement(g, "rpmc", verify=False)
        base_total = result.allocation.total
        q = repetitions_vector(g)
        prev_blocks = None
        for budget in (0, base_total, 2 * base_total, None):
            vec = vectorize_schedule(g, result.sdppo_schedule, q,
                                     memory_budget=budget)
            assert validate_schedule(g, vec.schedule) == q
            if budget is not None:
                assert vec.cost <= max(budget, vec.baseline_cost)
            if prev_blocks is not None:
                # A larger budget can never force more blocks.
                assert vec.blocks <= prev_blocks
            prev_blocks = vec.blocks
        assert vec.blocks == len(q)  # unconstrained = flat SAS

    def test_claimed_cost_matches_independent_recost(self):
        g = cd_to_dat()
        result = implement(g, "rpmc", verify=False)
        q = repetitions_vector(g)
        budget = result.allocation.total * 3 // 2
        vec = vectorize_schedule(g, result.sdppo_schedule, q,
                                 memory_budget=budget)
        assert vec.steps > 0
        assert blocked_cost(g, vec.schedule, q) == vec.cost

    @pytest.mark.parametrize("seed", range(4))
    def test_random_graphs_respect_budget(self, seed):
        g = random_sdf_graph(12, seed=700 + seed)
        result = implement(g, "apgan", verify=False)
        q = repetitions_vector(g)
        budget = result.allocation.total * 3 // 2
        vec = vectorize_schedule(g, result.sdppo_schedule, q,
                                 memory_budget=budget)
        assert validate_schedule(g, vec.schedule) == q
        if vec.steps:
            assert vec.cost <= budget

    @pytest.mark.parametrize("seed", range(3))
    def test_broadcast_graphs_block_validly(self, seed):
        g = random_broadcast_sdf_graph(10, seed=40 + seed)
        result = implement(g, "apgan", verify=False)
        q = repetitions_vector(g)
        vec = vectorize_schedule(g, result.sdppo_schedule, q)
        assert validate_schedule(g, vec.schedule) == q
        assert vec.blocks <= vec.baseline_blocks


class TestBatchedErrorParity:
    def test_underflow_error_is_byte_identical(self):
        g = chain_graph()
        bad = parse_schedule("(6B)(3A)(2C)")  # B fires before any A
        with pytest.raises(ScheduleError) as interp:
            validate_schedule(g, bad, backend="interpreter")
        with pytest.raises(ScheduleError) as batched:
            validate_schedule(g, bad, backend="batched")
        assert str(interp.value) == str(batched.value)

    def test_mid_block_underflow_error_is_byte_identical(self):
        # (4B) is fed by only one A firing: the block fails part-way
        # through, at the same firing index the interpreter reports.
        g = chain_graph()
        bad = parse_schedule("(1A)(4B)")
        with pytest.raises(ScheduleError) as interp:
            validate_schedule(g, bad, backend="interpreter")
        with pytest.raises(ScheduleError) as batched:
            validate_schedule(g, bad, backend="batched")
        assert str(interp.value) == str(batched.value)


class TestBatchedVM:
    def _implemented(self, graph, method="rpmc"):
        return implement(graph, method, verify=False, vectorize=True)

    def test_matches_scalar_vm_on_cddat(self):
        g = cd_to_dat()
        result = self._implemented(g)
        scalar = SharedMemoryVM(g, result.lifetimes, result.allocation)
        batched = BatchedVM(g, result.lifetimes, result.allocation)
        scalar.run(periods=2)
        batched.run(periods=2)
        assert batched.firings == scalar.firings
        assert batched.firings_per_actor == scalar.firings_per_actor
        assert batched.peak_address == scalar.peak_address
        assert batched.peak_address <= result.allocation.total

    @pytest.mark.parametrize("seed", range(4))
    def test_random_graphs_execute(self, seed):
        g = random_sdf_graph(10, seed=900 + seed)
        result = implement(g, "apgan", verify=False, vectorize=True)
        fires = run_shared_memory_check(
            g, result.lifetimes, result.allocation,
            periods=2, vm_class=BatchedVM,
        )
        assert fires == 2 * sum(repetitions_vector(g).values())

    @pytest.mark.parametrize("seed", range(2))
    def test_broadcast_graphs_execute(self, seed):
        g = random_broadcast_sdf_graph(10, seed=60 + seed)
        result = implement(g, "apgan", verify=False, vectorize=True)
        fires = run_shared_memory_check(
            g, result.lifetimes, result.allocation,
            periods=2, vm_class=BatchedVM,
        )
        assert fires == 2 * sum(repetitions_vector(g).values())

    def test_delayed_graph_executes(self):
        g = SDFGraph("dly")
        g.add_actors("ABC")
        g.add_edge("A", "B", 2, 1, delay=1)
        g.add_edge("B", "C", 1, 3)
        result = implement(g, "natural", verify=False, vectorize=True)
        run_shared_memory_check(
            g, result.lifetimes, result.allocation,
            periods=3, vm_class=BatchedVM,
        )


class TestVectorizedPipeline:
    def test_implement_carries_vectorize_result(self):
        g = cd_to_dat()
        result = implement(g, "rpmc", verify=False,
                           vectorize=True, memory_budget=None)
        vec = result.vectorize
        assert vec is not None
        assert vec.memory_budget is None
        # The downstream artifacts describe the BLOCKED schedule: its
        # honest re-cost is exactly the allocation the pipeline packed.
        assert result.allocation.total == vec.cost
        # The unblocked DP outputs survive untouched.
        assert str(result.sdppo_schedule) == str(vec.baseline_schedule)

    def test_plain_implement_has_no_vectorize_field(self):
        g = chain_graph()
        result = implement(g, "natural", verify=False)
        assert result.vectorize is None

    def test_budgeted_implement_respects_budget(self):
        g = cd_to_dat()
        plain = implement(g, "rpmc", verify=False)
        budget = plain.allocation.total * 3 // 2
        result = implement(g, "rpmc", verify=False,
                           vectorize=True, memory_budget=budget)
        assert result.vectorize.steps > 0
        assert result.allocation.total <= budget
