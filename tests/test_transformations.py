"""Tests for SDF graph transformations."""

import pytest

from repro.exceptions import GraphStructureError
from repro.sdf.graph import SDFGraph
from repro.sdf.repetitions import repetitions_vector
from repro.sdf.simulate import has_valid_schedule, validate_schedule
from repro.sdf.transformations import (
    apply_blocking_factor,
    blocked_repetitions,
    cluster_actors,
    insert_delays,
    normalize_token_sizes,
)
from repro.scheduling.dppo import dppo


def rate_chain():
    g = SDFGraph("chain")
    g.add_actors("ABC")
    g.add_edge("A", "B", 2, 1)
    g.add_edge("B", "C", 1, 3)
    return g


class TestBlocking:
    def test_blocked_repetitions(self):
        g = rate_chain()
        q = repetitions_vector(g)
        blocked = blocked_repetitions(g, 4)
        assert blocked == {a: 4 * n for a, n in q.items()}

    def test_invalid_factor(self):
        with pytest.raises(GraphStructureError):
            blocked_repetitions(rate_chain(), 0)

    def test_apply_blocking_scales_period(self):
        g = rate_chain()
        q = repetitions_vector(g)
        blocked = apply_blocking_factor(g, 3)
        bq = repetitions_vector(blocked)
        assert bq["__tick__"] == 1
        for a, n in q.items():
            assert bq[a] == 3 * n

    def test_factor_one_is_copy(self):
        g = rate_chain()
        blocked = apply_blocking_factor(g, 1)
        assert "__tick__" not in blocked
        assert blocked.num_actors == g.num_actors

    def test_blocked_graph_schedulable(self):
        blocked = apply_blocking_factor(rate_chain(), 2)
        assert has_valid_schedule(blocked)

    def test_blocked_dppo_cost_at_least_original(self):
        """Vectorized periods move at least as many tokens."""
        g = rate_chain()
        base = dppo(g, g.topological_order()).cost
        blocked = apply_blocking_factor(g, 4)
        cost = dppo(blocked, blocked.topological_order()).cost
        assert cost >= base


class TestClusterActors:
    def test_rates_scaled_by_member_repetitions(self):
        g = rate_chain()  # q = (3, 6, 2)
        clustered, info = cluster_actors(g, ["A", "B"], name="AB")
        # gcd(3, 6) = 3; per composite firing A fires 1, B fires 2.
        assert info.repetitions == {"A": 1, "B": 2}
        q = repetitions_vector(clustered)
        assert q["AB"] == 3
        e = clustered.edge("AB", "C")
        assert e.production == 2  # B produces 1 x 2 firings
        assert e.consumption == 3

    def test_clustered_graph_consistent(self):
        g = rate_chain()
        clustered, _ = cluster_actors(g, ["B", "C"], name="BC")
        assert has_valid_schedule(clustered)

    def test_internal_subgraph(self):
        g = rate_chain()
        _, info = cluster_actors(g, ["A", "B"], name="AB")
        assert sorted(info.internal.actor_names()) == ["A", "B"]
        assert info.internal.num_edges == 1

    def test_illegal_cycle_rejected(self):
        g = SDFGraph()
        g.add_actors("ABC")
        g.add_edge("A", "B", 1, 1)
        g.add_edge("B", "C", 1, 1)
        g.add_edge("A", "C", 1, 1)
        # Clustering {A, C} puts B both downstream and upstream.
        with pytest.raises(GraphStructureError):
            cluster_actors(g, ["A", "C"])

    def test_unknown_member(self):
        with pytest.raises(GraphStructureError):
            cluster_actors(rate_chain(), ["A", "Z"])

    def test_empty_members(self):
        with pytest.raises(GraphStructureError):
            cluster_actors(rate_chain(), [])

    def test_name_collision(self):
        with pytest.raises(GraphStructureError):
            cluster_actors(rate_chain(), ["A", "B"], name="C")

    def test_delay_preserved_on_boundary(self):
        g = SDFGraph()
        g.add_actors("ABC")
        g.add_edge("A", "B", 1, 1, delay=2)
        g.add_edge("B", "C", 1, 1)
        clustered, _ = cluster_actors(g, ["B", "C"], name="BC")
        assert clustered.edge("A", "BC").delay == 2


class TestInsertDelays:
    def test_adds_tokens(self):
        g = rate_chain()
        modified = insert_delays(g, "A", "B", 5)
        assert modified.edge("A", "B").delay == 5
        assert g.edge("A", "B").delay == 0  # original untouched

    def test_negative_rejected(self):
        with pytest.raises(GraphStructureError):
            insert_delays(rate_chain(), "A", "B", -1)

    def test_enables_feedback(self):
        g = SDFGraph()
        g.add_actors("AB")
        g.add_edge("A", "B", 1, 1)
        g.add_edge("B", "A", 1, 1)
        assert not has_valid_schedule(g)
        assert has_valid_schedule(insert_delays(g, "B", "A", 1))


class TestNormalizeTokenSizes:
    def test_word_rates(self):
        g = SDFGraph()
        g.add_actors("AB")
        g.add_edge("A", "B", 2, 1, delay=1, token_size=4)
        n = normalize_token_sizes(g)
        e = n.edge("A", "B")
        assert (e.production, e.consumption, e.delay, e.token_size) == (8, 4, 4, 1)

    def test_repetitions_invariant(self):
        g = SDFGraph()
        g.add_actors("ABC")
        g.add_edge("A", "B", 2, 1, token_size=3)
        g.add_edge("B", "C", 1, 3, token_size=2)
        assert repetitions_vector(normalize_token_sizes(g)) == repetitions_vector(g)

    def test_buffer_words_invariant(self):
        from repro.sdf.bounds import bmlb
        g = SDFGraph()
        g.add_actors("AB")
        g.add_edge("A", "B", 2, 3, token_size=5)
        # BMLB in words: eta(2,3) = 6 tokens * 5 words = 30;
        # normalized: eta(10, 15) = 30 words.
        assert bmlb(g) == bmlb(normalize_token_sizes(g)) == 30
