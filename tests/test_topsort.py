"""Tests for topological sort utilities."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.exceptions import GraphStructureError
from repro.sdf.graph import SDFGraph
from repro.sdf.random_graphs import random_sdf_graph
from repro.sdf.topsort import (
    all_topological_sorts,
    count_topological_sorts,
    is_topological_order,
    random_topological_sort,
)


def diamond():
    g = SDFGraph()
    g.add_actors("ABCD")
    g.add_edge("A", "B", 1, 1)
    g.add_edge("A", "C", 1, 1)
    g.add_edge("B", "D", 1, 1)
    g.add_edge("C", "D", 1, 1)
    return g


class TestIsTopologicalOrder:
    def test_accepts_valid(self):
        assert is_topological_order(diamond(), ["A", "B", "C", "D"])
        assert is_topological_order(diamond(), ["A", "C", "B", "D"])

    def test_rejects_violations(self):
        assert not is_topological_order(diamond(), ["B", "A", "C", "D"])

    def test_rejects_wrong_actor_set(self):
        assert not is_topological_order(diamond(), ["A", "B", "C"])
        assert not is_topological_order(diamond(), ["A", "B", "C", "C"])


class TestRandomSort:
    def test_always_topological(self):
        g = random_sdf_graph(25, seed=7)
        rng = random.Random(42)
        for _ in range(20):
            assert is_topological_order(g, random_topological_sort(g, rng))

    def test_reaches_multiple_sorts(self):
        g = diamond()
        rng = random.Random(0)
        seen = {tuple(random_topological_sort(g, rng)) for _ in range(50)}
        assert len(seen) == 2  # ABCD and ACBD

    def test_cycle_raises(self):
        g = SDFGraph()
        g.add_actors("AB")
        g.add_edge("A", "B", 1, 1)
        g.add_edge("B", "A", 1, 1)
        with pytest.raises(GraphStructureError):
            random_topological_sort(g, random.Random(0))


class TestAllSorts:
    def test_diamond_has_two(self):
        sorts = list(all_topological_sorts(diamond()))
        assert len(sorts) == 2
        assert ["A", "B", "C", "D"] in sorts
        assert ["A", "C", "B", "D"] in sorts

    def test_chain_has_one(self):
        g = SDFGraph()
        g.add_actors("ABC")
        g.add_edge("A", "B", 1, 1)
        g.add_edge("B", "C", 1, 1)
        assert list(all_topological_sorts(g)) == [["A", "B", "C"]]

    def test_independent_actors_factorial(self):
        g = SDFGraph()
        g.add_actors("ABC")
        assert len(list(all_topological_sorts(g))) == 6

    def test_all_results_topological(self):
        g = random_sdf_graph(7, seed=3)
        sorts = list(all_topological_sorts(g))
        assert sorts
        for s in sorts:
            assert is_topological_order(g, s)
        # no duplicates
        assert len({tuple(s) for s in sorts}) == len(sorts)


class TestCounting:
    def test_matches_enumeration(self):
        for seed in range(5):
            g = random_sdf_graph(7, seed=seed)
            assert count_topological_sorts(g) == len(
                list(all_topological_sorts(g))
            )

    def test_empty_graph(self):
        assert count_topological_sorts(SDFGraph()) == 1

    def test_cycle_raises(self):
        g = SDFGraph()
        g.add_actors("AB")
        g.add_edge("A", "B", 1, 1)
        g.add_edge("B", "A", 1, 1)
        with pytest.raises(GraphStructureError):
            count_topological_sorts(g)
