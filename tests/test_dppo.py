"""Tests for DPPO (non-shared dynamic programming post optimization)."""

import itertools

import pytest
from hypothesis import given, settings, strategies as st

from repro.sdf.graph import SDFGraph
from repro.sdf.random_graphs import random_chain_graph, random_sdf_graph
from repro.sdf.repetitions import repetitions_vector
from repro.sdf.simulate import buffer_memory_nonshared, validate_schedule
from repro.scheduling.common import ChainContext, SplitTable, build_schedule_from_splits
from repro.scheduling.dppo import dppo
from repro.exceptions import GraphStructureError


def all_parenthesizations(i, j):
    """All binary split trees over window (i, j), as nested dicts."""
    if i == j:
        yield None
        return
    for k in range(i, j):
        for left in all_parenthesizations(i, k):
            for right in all_parenthesizations(k + 1, j):
                yield (k, left, right)


def tree_to_split_table(tree, i, j, split, factored):
    if tree is None:
        return
    k, left, right = tree
    split[(i, j)] = k
    factored[(i, j)] = True
    tree_to_split_table(left, i, k, split, factored)
    tree_to_split_table(right, k + 1, j, split, factored)


def brute_force_best(graph, order):
    """Minimum bufmem over all R-schedule parenthesizations, by simulation."""
    context = ChainContext(graph, order)
    n = context.n
    best = None
    for tree in all_parenthesizations(0, n - 1):
        split, factored = {}, {}
        tree_to_split_table(tree, 0, n - 1, split, factored)
        schedule = build_schedule_from_splits(
            context, SplitTable(split=split, factored=factored)
        )
        cost = buffer_memory_nonshared(graph, schedule)
        if best is None or cost < best:
            best = cost
    return best


class TestKnownValues:
    def test_three_actor_chain(self):
        g = SDFGraph()
        g.add_actors("ABC")
        g.add_edge("A", "B", 10, 2)
        g.add_edge("B", "C", 2, 3)
        result = dppo(g, ["A", "B", "C"])
        assert result.cost == 36
        assert str(result.schedule) == "(3A)(5(3B)(2C))"

    def test_figure1_graph(self):
        g = SDFGraph()
        g.add_actors("ABC")
        g.add_edge("A", "B", 2, 1, delay=1)
        g.add_edge("B", "C", 1, 3)
        result = dppo(g, ["A", "B", "C"])
        # With the delay the order-optimal cost is bounded by S2's 9.
        assert result.cost <= 9
        validate_schedule(g, result.schedule)

    def test_two_actors(self):
        g = SDFGraph()
        g.add_actors("AB")
        g.add_edge("A", "B", 4, 6)
        result = dppo(g, ["A", "B"])
        # (3A)(2B) factored by gcd 1; TNSE 12 / gcd(3,2)=1 -> 12
        assert result.cost == 12
        assert str(result.schedule) == "(3A)(2B)"

    def test_single_actor(self):
        g = SDFGraph()
        g.add_actor("A")
        result = dppo(g, ["A"])
        assert result.cost == 0
        assert str(result.schedule) == "A"


class TestScheduleValidity:
    @pytest.mark.parametrize("seed", range(6))
    def test_chain_schedules_valid(self, seed):
        g = random_chain_graph(7, seed=seed)
        result = dppo(g, g.chain_order())
        validate_schedule(g, result.schedule)
        assert result.schedule.is_single_appearance()

    @pytest.mark.parametrize("seed", range(6))
    def test_dag_schedules_valid(self, seed):
        g = random_sdf_graph(12, seed=seed)
        order = g.topological_order()
        result = dppo(g, order)
        validate_schedule(g, result.schedule)
        assert result.schedule.lexical_order() == order

    def test_non_topological_order_rejected(self):
        g = SDFGraph()
        g.add_actors("AB")
        g.add_edge("A", "B", 1, 1)
        with pytest.raises(GraphStructureError):
            dppo(g, ["B", "A"])


class TestCostCorrectness:
    """DPPO's reported cost must equal its schedule's simulated bufmem,
    and be minimal over all parenthesizations."""

    @pytest.mark.parametrize("seed", range(8))
    def test_cost_matches_simulation(self, seed):
        g = random_chain_graph(6, seed=seed)
        result = dppo(g, g.chain_order())
        assert result.cost == buffer_memory_nonshared(g, result.schedule)

    @pytest.mark.parametrize("seed", range(8))
    def test_order_optimality_small_chains(self, seed):
        g = random_chain_graph(5, seed=seed)
        order = g.chain_order()
        result = dppo(g, order)
        assert result.cost == brute_force_best(g, order)

    @pytest.mark.parametrize("seed", range(4))
    def test_order_optimality_small_dags(self, seed):
        g = random_sdf_graph(5, seed=seed)
        order = g.topological_order()
        result = dppo(g, order)
        assert result.cost == brute_force_best(g, order)

    @given(st.integers(min_value=0, max_value=2000))
    @settings(max_examples=25, deadline=None)
    def test_cost_matches_simulation_dags(self, seed):
        g = random_sdf_graph(8, seed=seed)
        order = g.topological_order()
        result = dppo(g, order)
        assert result.cost == buffer_memory_nonshared(g, result.schedule)


class TestDelays:
    def test_delay_cost_included(self):
        g = SDFGraph()
        g.add_actors("AB")
        g.add_edge("A", "B", 2, 3, delay=4)
        result = dppo(g, ["A", "B"])
        assert result.cost == buffer_memory_nonshared(g, result.schedule)

    @pytest.mark.parametrize("seed", range(5))
    def test_delayed_chain_cost_matches(self, seed):
        import random as _random
        rng = _random.Random(seed)
        g = SDFGraph()
        names = [f"x{i}" for i in range(5)]
        for n in names:
            g.add_actor(n)
        for u, v in zip(names, names[1:]):
            g.add_edge(u, v, rng.randint(1, 4), rng.randint(1, 4),
                       delay=rng.randint(0, 3))
        result = dppo(g, names)
        assert result.cost == buffer_memory_nonshared(g, result.schedule)
