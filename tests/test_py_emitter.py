"""Tests for the executable Python code emitter."""

import pytest

from repro.exceptions import CodegenError
from repro.sdf.graph import SDFGraph
from repro.scheduling.pipeline import implement
from repro.codegen.py_emitter import compile_python, emit_python
from repro.extensions.higher_order import fir_graph


def passthrough_actors(graph):
    """Actors that forward token values (copying input 0 round-robin)."""

    def make(name):
        out_edges = graph.out_edges(name)
        in_edges = graph.in_edges(name)

        def fire(inputs):
            pool = [v for tokens in inputs for v in tokens]
            outputs = []
            cursor = 0
            for e in out_edges:
                need = e.production * e.token_size
                tokens = []
                for _ in range(need):
                    tokens.append(pool[cursor % len(pool)] if pool else 1)
                    cursor += 1
                outputs.append(tokens)
            return outputs

        return fire

    return {a: make(a) for a in graph.actor_names()}


class TestEmission:
    def test_module_structure(self):
        g = SDFGraph()
        g.add_actors("AB")
        g.add_edge("A", "B", 2, 1)
        r = implement(g, "natural")
        source = emit_python(g, r.lifetimes, r.allocation)
        assert "POOL_SIZE" in source
        assert "def run_period" in source
        assert "def _fire_A" in source
        compile(source, "<test>", "exec")  # syntactically valid

    def test_missing_allocation(self):
        from repro.allocation.first_fit import Allocation

        g = SDFGraph()
        g.add_actors("AB")
        g.add_edge("A", "B", 1, 1)
        r = implement(g, "natural")
        bad = Allocation(offsets={}, total=0, order=[],
                         graph=r.allocation.graph)
        with pytest.raises(CodegenError):
            emit_python(g, r.lifetimes, bad)


class TestExecution:
    def test_runs_multirate_chain(self):
        g = SDFGraph()
        g.add_actors("ABC")
        g.add_edge("A", "B", 2, 1)
        g.add_edge("B", "C", 1, 3)
        r = implement(g, "natural")
        mod = compile_python(g, r.lifetimes, r.allocation)
        memory = mod["run"](passthrough_actors(g), periods=2)
        assert len(memory) == max(r.allocation.total, 1)

    def test_output_arity_checked(self):
        g = SDFGraph()
        g.add_actors("AB")
        g.add_edge("A", "B", 1, 1)
        r = implement(g, "natural")
        mod = compile_python(g, r.lifetimes, r.allocation)

        def bad_a(inputs):
            return []  # must return one output list

        actors = passthrough_actors(g)
        actors["A"] = bad_a
        with pytest.raises(ValueError):
            mod["run"](actors, periods=1)

    def test_output_size_checked(self):
        g = SDFGraph()
        g.add_actors("AB")
        g.add_edge("A", "B", 3, 1)
        r = implement(g, "natural")
        mod = compile_python(g, r.lifetimes, r.allocation)
        actors = passthrough_actors(g)
        actors["A"] = lambda inputs: [[1]]  # needs 3 tokens
        with pytest.raises(ValueError):
            mod["run"](actors, periods=1)

    def test_fir_computes_correct_result(self):
        """The flagship check: generated code computes a real FIR."""
        taps = 5
        graph = fir_graph(taps)
        r = implement(graph, "natural")
        mod = compile_python(graph, r.lifetimes, r.allocation)
        coeffs = [1, 2, 3, 4, 5]
        sample = 7
        outputs = []

        def actor(name):
            def fire(inputs):
                if name == "in":
                    return [[sample] for _ in graph.out_edges("in")]
                if name.startswith("gain"):
                    k = int(name[4:])
                    return [[inputs[0][0] * coeffs[k]]]
                if name.startswith("add"):
                    return [[sum(v[0] for v in inputs)]]
                outputs.append(inputs[0][0])
                return []
            return fire

        mod["run"]({a: actor(a) for a in graph.actor_names()}, periods=3)
        expected = sample + sample * sum(coeffs)
        assert outputs == [expected] * 3

    def test_delays_preloaded(self):
        g = SDFGraph()
        g.add_actors("AB")
        g.add_edge("A", "B", 1, 1, delay=2)
        r = implement(g, "natural")
        mod = compile_python(g, r.lifetimes, r.allocation)
        seen = []

        def a_fire(inputs):
            return [[100]]

        def b_fire(inputs):
            seen.append(inputs[0][0])
            return []

        key = ("A", "B", 0)
        mod["run"](
            {"A": a_fire, "B": b_fire},
            periods=2,
            preloads={key: [7, 8]},
        )
        # B consumes the two preloaded tokens first (FIFO).
        assert seen[0] == 7

    def test_matches_vm_on_practical_system(self):
        """Generated code and the VM agree the allocation is usable."""
        from repro.apps import table1_graph

        g = table1_graph("4pamxmitrec")
        r = implement(g, "rpmc")
        mod = compile_python(g, r.lifetimes, r.allocation)
        mod["run"](passthrough_actors(g), periods=2)
