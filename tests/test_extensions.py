"""Tests for the section 11.1.4 / section 12 extension features."""

import pytest

from repro.exceptions import GraphStructureError
from repro.sdf.graph import SDFGraph
from repro.sdf.repetitions import repetitions_vector
from repro.sdf.simulate import is_valid_schedule, validate_schedule
from repro.scheduling.pipeline import implement
from repro.codegen.vm import SharedMemoryVM
from repro.apps import table1_graph
from repro.extensions.buffer_merging import (
    find_merge_candidates,
    merged_allocation,
)
from repro.extensions.higher_order import (
    SubgraphTemplate,
    chain_expand,
    fir_graph,
)
from repro.extensions.nas import two_appearance_search
from repro.extensions.regularity import (
    compress_firing_sequence,
    optimal_looping,
    strip_instance_suffix,
)


class TestOptimalLooping:
    def test_simple_repeat(self):
        assert str(optimal_looping(list("GAGAGA"))) == "(3G A)"

    def test_prefix_plus_repeat(self):
        assert str(optimal_looping(list("GGAGAGA"))) == "G(3G A)"

    def test_no_structure(self):
        s = optimal_looping(list("ABCABD"))
        assert s.firing_list() == list("ABCABD")

    def test_nested_repetition(self):
        # AABAAB AABAAB -> (2(2A)B) twice -> (4? no: (2 (2A) B) x2
        s = optimal_looping(list("AABAABAABAAB"))
        assert s.firing_list() == list("AABAABAABAAB")
        # Minimum appearances: (4(2A)B) uses 2.
        assert sum(s.appearances().values()) == 2

    def test_single_actor_runs(self):
        assert str(optimal_looping(["A"] * 7)) == "(7A)"

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            optimal_looping([])

    @pytest.mark.parametrize(
        "seq",
        [
            list("ABAB"), list("AAAA"), list("ABBA"),
            list("XYZXYZXY"), list("AABBAABB"),
        ],
    )
    def test_firing_sequence_preserved(self, seq):
        assert optimal_looping(seq).firing_list() == seq

    def test_appearance_count_never_worse_than_flat(self):
        import random
        rng = random.Random(0)
        for _ in range(20):
            seq = [rng.choice("ABC") for _ in range(rng.randint(1, 12))]
            s = optimal_looping(seq)
            assert s.firing_list() == seq
            # Run-length encoding is always available, so appearances
            # can't exceed the number of maximal runs.
            runs = 1 + sum(1 for a, b in zip(seq, seq[1:]) if a != b)
            assert sum(s.appearances().values()) <= runs


class TestRegularityFIR:
    def test_strip_instance_suffix(self):
        assert strip_instance_suffix("G12") == "G"
        assert strip_instance_suffix("add3") == "add"
        assert strip_instance_suffix("A") == "A"
        assert strip_instance_suffix("42") == "42"

    def test_fir_pattern_collapses(self):
        """Section 12: G0 G1 A0 G2 A1 ... -> G (n (G A))."""
        seq = ["G0"]
        for i in range(1, 6):
            seq += [f"G{i}", f"A{i - 1}"]
        s = compress_firing_sequence(seq)
        assert str(s) == "G(5G A)"

    def test_fir_graph_schedule_collapses(self):
        """End to end: expand the Chain actor, schedule, compress."""
        graph = fir_graph(6)
        result = implement(graph, "natural")
        seq = result.sdppo_schedule.firing_list()
        compressed = compress_firing_sequence(seq)
        # Label-collapapsed appearances: far fewer than the 14 actors.
        assert sum(compressed.appearances().values()) <= 8


class TestHigherOrder:
    def test_fir_graph_structure(self):
        g = fir_graph(4)
        assert g.num_actors == 2 + 2 * 4
        assert g.is_acyclic()
        assert set(repetitions_vector(g).values()) == {1}

    def test_chain_expand_wiring(self):
        g = SDFGraph()
        g.add_actors(["src", "snk"])
        t = SubgraphTemplate(
            name="stage",
            actors={"f": 1},
            edges=[],
            chain_in="f",
            chain_out="f",
        )
        chain_expand(g, t, 3, "src", "snk")
        assert g.has_edge("src", "f0")
        assert g.has_edge("f0", "f1")
        assert g.has_edge("f1", "f2")
        assert g.has_edge("f2", "snk")

    def test_template_validation(self):
        with pytest.raises(GraphStructureError):
            SubgraphTemplate(
                name="bad", actors={"f": 1}, edges=[],
                chain_in="zzz", chain_out="f",
            )
        with pytest.raises(GraphStructureError):
            SubgraphTemplate(
                name="bad", actors={"f": 1}, edges=[("f", "g", 1, 1)],
                chain_in="f", chain_out="f",
            )

    def test_chain_expand_validation(self):
        g = SDFGraph()
        g.add_actor("src")
        t = SubgraphTemplate(
            name="s", actors={"f": 1}, edges=[], chain_in="f", chain_out="f"
        )
        with pytest.raises(GraphStructureError):
            chain_expand(g, t, 0, "src", "src")
        with pytest.raises(GraphStructureError):
            chain_expand(g, t, 2, "src", "missing")

    def test_broadcast_requires_source(self):
        g = SDFGraph()
        g.add_actors(["a", "b"])
        t = SubgraphTemplate(
            name="s", actors={"f": 1}, edges=[],
            chain_in="f", chain_out="f", broadcast_in="f",
        )
        with pytest.raises(GraphStructureError):
            chain_expand(g, t, 2, "a", "b")

    def test_fir_rejects_zero_taps(self):
        with pytest.raises(GraphStructureError):
            fir_graph(0)


class TestBufferMerging:
    @pytest.mark.parametrize(
        "name", ["overAddFFT", "16qamModem", "satrec", "blockVox", "qmf23_2d"]
    )
    def test_merged_allocation_executes(self, name):
        """In-place merging must survive token-level execution."""
        g = table1_graph(name)
        result = implement(g, "rpmc")
        alloc, applied = merged_allocation(g, result.lifetimes)
        vm = SharedMemoryVM(g, result.lifetimes, alloc)
        vm.run(periods=2)

    def test_candidates_respect_rate_condition(self):
        g = table1_graph("satrec")
        result = implement(g, "rpmc")
        for c in find_merge_candidates(g, result.lifetimes):
            e_in = next(e for e in g.edges() if e.key == c.input_edge)
            e_out = next(e for e in g.edges() if e.key == c.output_edge)
            assert e_out.production * e_out.token_size <= (
                e_in.consumption * e_in.token_size
            )
            assert e_in.sink == c.actor == e_out.source

    def test_each_buffer_merged_once(self):
        g = table1_graph("blockVox")
        result = implement(g, "rpmc")
        candidates = find_merge_candidates(g, result.lifetimes)
        seen = set()
        for c in candidates:
            assert c.input_edge not in seen
            assert c.output_edge not in seen
            seen.add(c.input_edge)
            seen.add(c.output_edge)

    def test_merging_can_save_memory(self):
        g = table1_graph("blockVox")
        result = implement(g, "rpmc")
        alloc, applied = merged_allocation(g, result.lifetimes)
        assert applied
        assert alloc.total <= result.allocation.total

    def test_expander_not_merged(self):
        """An actor producing more words than it consumes per firing
        cannot overlay its output on its input."""
        g = SDFGraph()
        g.add_actors("ABC")
        g.add_edge("A", "B", 1, 1)
        g.add_edge("B", "C", 4, 4)   # B expands 1 -> 4
        result = implement(g, "natural")
        candidates = find_merge_candidates(g, result.lifetimes)
        assert all(c.actor != "B" for c in candidates)


class TestTwoAppearance:
    def test_schedule_always_valid(self):
        g = table1_graph("4pamxmitrec")
        result = two_appearance_search(g)
        validate_schedule(g, result.schedule)

    def test_never_worse_than_sas(self):
        for name in ("16qamModem", "overAddFFT"):
            result = two_appearance_search(table1_graph(name))
            assert result.cost <= result.sas_cost

    def test_split_reduces_buffering(self):
        """The classic win: splitting the middle actor of an expander/
        contractor chain halves the peak."""
        g = SDFGraph()
        g.add_actors("ABC")
        g.add_edge("A", "B", 1, 1)
        g.add_edge("B", "C", 1, 4)
        # q = (4, 4, 1); SAS (4A)(4B)C holds 4 on both edges.
        result = two_appearance_search(g)
        assert result.cost <= result.sas_cost
        if result.split_actor is not None:
            assert result.schedule.appearances()[result.split_actor] == 2

    def test_metric_validation(self):
        g = table1_graph("4pamxmitrec")
        with pytest.raises(ValueError):
            two_appearance_search(g, metric="bogus")

    def test_shared_metric_runs(self):
        g = SDFGraph()
        g.add_actors("AB")
        g.add_edge("A", "B", 2, 1)
        result = two_appearance_search(g, metric="shared")
        assert result.metric == "shared"
        validate_schedule(g, result.schedule)
