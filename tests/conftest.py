"""Shared test fixtures.

``repro.cli`` deliberately exports ``--jobs`` to ``REPRO_JOBS`` for the
rest of the process (so nested ``parallel_map`` calls see it).  Inside
the test suite that export must not leak across tests —
``monkeypatch.delenv(..., raising=False)`` on an *unset* variable
records nothing to undo, so a CLI test that passes ``--jobs 2`` would
silently flip every later test (notably the serve ``/batch`` tests,
whose hit/miss statuses depend on serial fan-out) into parallel mode.
"""

import os

import pytest


@pytest.fixture(autouse=True)
def _isolate_repro_jobs():
    before = os.environ.get("REPRO_JOBS")
    yield
    if before is None:
        os.environ.pop("REPRO_JOBS", None)
    else:
        os.environ["REPRO_JOBS"] = before
