"""Tests for periodic buffer lifetimes (section 8.4, figures 17–18)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.exceptions import SDFError
from repro.lifetimes.periodic import PeriodicLifetime


def fig17_ab():
    """Buffer AB of figure 17: start 0, dur 2, a = (4, 9), loops (2, 2).

    Live intervals [0,2], [4,6], [9,11], [13,15].
    """
    return PeriodicLifetime(
        name="A->B", size=3, start=0, duration=2,
        periods=((4, 2), (9, 2)), total_span=18,
    )


class TestConstruction:
    def test_rejects_negative_size(self):
        with pytest.raises(SDFError):
            PeriodicLifetime("b", -1, 0, 1)

    def test_rejects_zero_duration(self):
        with pytest.raises(SDFError):
            PeriodicLifetime("b", 1, 0, 0)

    def test_rejects_unit_loop_entries(self):
        with pytest.raises(SDFError):
            PeriodicLifetime("b", 1, 0, 1, periods=((4, 1),))

    def test_rejects_non_nested_periods(self):
        with pytest.raises(SDFError):
            # a1*(l1-1) = 5*3 = 15 > a2 = 7
            PeriodicLifetime("b", 1, 0, 1, periods=((5, 4), (7, 2)))


class TestFigure17:
    def test_occurrence_starts(self):
        b = fig17_ab()
        assert list(b.occurrence_starts()) == [0, 4, 9, 13]

    def test_live_intervals(self):
        b = fig17_ab()
        assert list(b.intervals()) == [(0, 2), (4, 6), (9, 11), (13, 15)]

    def test_live_at(self):
        b = fig17_ab()
        live_times = {t for t in range(18) if b.live_at(t)}
        assert live_times == {0, 1, 4, 5, 9, 10, 13, 14}

    def test_not_live_before_start(self):
        assert not fig17_ab().live_at(-1)

    def test_num_occurrences(self):
        assert fig17_ab().num_occurrences == 4

    def test_last_stop(self):
        assert fig17_ab().last_stop == 15


class TestPaperMixedRadixExample:
    """Section 8.4's worked example: basis (2,2,2), a = (28,13,4),
    digits (0,1,1) = 17; incrementing gives (1,0,0) = 28."""

    def lifetime(self):
        return PeriodicLifetime(
            name="x", size=1, start=0, duration=2,
            periods=((4, 2), (13, 2), (28, 2)), total_span=56,
        )

    def test_value_17_is_an_occurrence(self):
        assert 17 in list(self.lifetime().occurrence_starts())

    def test_next_after_17_interval(self):
        b = self.lifetime()
        # The next occurrence strictly after 17's interval [17, 19).
        assert b.next_start(19) == 28

    def test_all_occurrences(self):
        b = self.lifetime()
        expected = sorted(
            p1 * 4 + p2 * 13 + p3 * 28
            for p1 in (0, 1) for p2 in (0, 1) for p3 in (0, 1)
        )
        assert list(b.occurrence_starts()) == expected


class TestNextStart:
    def test_before_start(self):
        assert fig17_ab().next_start(-5) == 0

    def test_at_occurrence(self):
        assert fig17_ab().next_start(4) == 4

    def test_between_occurrences(self):
        assert fig17_ab().next_start(5) == 9
        assert fig17_ab().next_start(2) == 4

    def test_after_last(self):
        assert fig17_ab().next_start(14) is None
        assert fig17_ab().next_start(100) is None

    def test_non_periodic(self):
        b = PeriodicLifetime("b", 1, 5, 3)
        assert b.next_start(0) == 5
        assert b.next_start(5) == 5
        assert b.next_start(6) is None


class TestSolid:
    def test_solid_envelope(self):
        s = fig17_ab().solid()
        assert s.start == 0
        assert s.duration == 15
        assert s.periods == ()

    def test_solid_of_non_periodic_is_self(self):
        b = PeriodicLifetime("b", 1, 5, 3)
        assert b.solid() is b


class TestOverlaps:
    def test_disjoint_periodic_pair_fig17(self):
        """AB and CD of figure 17 interleave without intersecting."""
        ab = fig17_ab()
        cd = PeriodicLifetime(
            name="C->D", size=2, start=2, duration=2,
            periods=((4, 2), (9, 2)), total_span=18,
        )
        assert not ab.overlaps(cd)
        assert not cd.overlaps(ab)

    def test_overlapping_pair(self):
        ab = fig17_ab()
        other = PeriodicLifetime("o", 1, 1, 2, total_span=18)
        assert ab.overlaps(other)
        assert other.overlaps(ab)

    def test_boundary_touch_is_not_overlap(self):
        a = PeriodicLifetime("a", 1, 0, 2)
        b = PeriodicLifetime("b", 1, 2, 2)
        assert not a.overlaps(b)
        assert not b.overlaps(a)

    def test_solid_fallback_is_pessimistic(self):
        ab = fig17_ab()
        cd = PeriodicLifetime(
            name="C->D", size=2, start=2, duration=2,
            periods=((4, 2), (9, 2)), total_span=18,
        )
        # With the cap forcing solid envelopes they appear to overlap.
        assert ab.overlaps(cd, occurrence_cap=1)


def naive_live_at(b: PeriodicLifetime, t: int) -> bool:
    return any(s <= t < s + b.duration for s in b.occurrence_starts())


def naive_overlap(a: PeriodicLifetime, b: PeriodicLifetime) -> bool:
    return any(
        sa < sb + b.duration and sb < sa + a.duration
        for sa in a.occurrence_starts()
        for sb in b.occurrence_starts()
    )


@st.composite
def lifetimes(draw):
    """Random nested-period lifetimes as built from schedule trees."""
    duration = draw(st.integers(min_value=1, max_value=4))
    start = draw(st.integers(min_value=0, max_value=6))
    levels = draw(st.integers(min_value=0, max_value=3))
    periods = []
    span = max(duration, 1)
    for _ in range(levels):
        loop = draw(st.integers(min_value=2, max_value=3))
        a = span + draw(st.integers(min_value=0, max_value=3))
        periods.append((a, loop))
        span = a * loop
    return PeriodicLifetime(
        name="b", size=draw(st.integers(min_value=1, max_value=5)),
        start=start, duration=duration,
        periods=tuple(periods), total_span=start + span,
    )


class TestProperties:
    @given(lifetimes(), st.integers(min_value=-5, max_value=200))
    @settings(max_examples=150, deadline=None)
    def test_live_at_matches_enumeration(self, b, t):
        assert b.live_at(t) == naive_live_at(b, t)

    @given(lifetimes(), st.integers(min_value=-5, max_value=200))
    @settings(max_examples=150, deadline=None)
    def test_next_start_matches_enumeration(self, b, t):
        expected = min(
            (s for s in b.occurrence_starts() if s >= t), default=None
        )
        assert b.next_start(t) == expected

    @given(lifetimes(), lifetimes())
    @settings(max_examples=150, deadline=None)
    def test_overlap_matches_enumeration(self, a, b):
        assert a.overlaps(b) == naive_overlap(a, b)

    @given(lifetimes())
    @settings(max_examples=80, deadline=None)
    def test_occurrences_sorted_and_counted(self, b):
        starts = list(b.occurrence_starts())
        assert starts == sorted(starts)
        assert len(starts) == b.num_occurrences

    @given(lifetimes())
    @settings(max_examples=80, deadline=None)
    def test_solid_covers_all_occurrences(self, b):
        s = b.solid()
        for lo, hi in b.intervals():
            assert s.start <= lo and hi <= s.start + s.duration


class TestOverlapBranchesAgainstBruteForce:
    """Every :meth:`overlaps` code path agrees with naive enumeration.

    The default cap (4096) means the random lifetimes above only ever
    exercise the both-sides-enumerable binary-search path.  Here a
    mid-range ``occurrence_cap`` — between the two occurrence counts —
    forces the analytic figure-18 path (``live_at``/``next_start``
    against the dense side), which must still be *exact*, while a cap
    below both counts forces the solid-envelope fallback, which must be
    pessimistic but never optimistic.
    """

    @given(lifetimes(), lifetimes())
    @settings(max_examples=150, deadline=None)
    def test_analytic_branch_is_exact(self, a, b):
        lo = min(a.num_occurrences, b.num_occurrences)
        hi = max(a.num_occurrences, b.num_occurrences)
        if lo == hi:
            return  # no cap separates the pair; branch unreachable
        # sparse side enumerable, dense side strictly over the cap
        cap = hi - 1
        assert cap >= lo
        assert a.overlaps(b, occurrence_cap=cap) == naive_overlap(a, b)
        assert b.overlaps(a, occurrence_cap=cap) == naive_overlap(b, a)

    @given(lifetimes(), lifetimes())
    @settings(max_examples=150, deadline=None)
    def test_solid_fallback_never_misses_an_overlap(self, a, b):
        if min(a.num_occurrences, b.num_occurrences) <= 1:
            return  # cap of 0/(-1) is meaningless; fallback unreachable
        cap = min(a.num_occurrences, b.num_occurrences) - 1
        got = a.overlaps(b, occurrence_cap=cap)
        if naive_overlap(a, b):
            assert got  # pessimistic: a real overlap is never dropped
        assert got == naive_overlap(a.solid(), b.solid())

    @given(lifetimes(), st.integers(min_value=1, max_value=64))
    @settings(max_examples=100, deadline=None)
    def test_self_overlap_under_any_cap(self, a, cap):
        assert a.overlaps(a, occurrence_cap=cap)


class TestFromBasis:
    @given(lifetimes())
    @settings(max_examples=100, deadline=None)
    def test_round_trip_with_shuffled_unit_padded_basis(self, b):
        # A raw parent-set walk yields the periods in arbitrary order
        # with unit loops interleaved; from_basis must normalise that
        # back to the same lifetime.
        basis = list(b.periods)[::-1]
        basis[1:1] = [(1, 1), (b.duration + 7, 1)]
        rebuilt = PeriodicLifetime.from_basis(
            b.name, b.size, b.start, b.duration, basis,
            total_span=b.total_span,
        )
        assert rebuilt == b
        assert list(rebuilt.intervals()) == list(b.intervals())

    def test_unit_loops_dropped(self):
        b = PeriodicLifetime.from_basis("b", 1, 0, 2, [(3, 1), (4, 2)])
        assert b.periods == ((4, 2),)

    def test_sorts_ascending(self):
        b = PeriodicLifetime.from_basis("b", 1, 0, 2, [(9, 2), (4, 2)])
        assert b.periods == ((4, 2), (9, 2))

    def test_still_validates_nesting(self):
        from repro.exceptions import SDFError
        with pytest.raises(SDFError):
            PeriodicLifetime.from_basis("b", 1, 0, 1, [(7, 2), (5, 4)])
