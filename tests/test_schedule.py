"""Tests for looped schedule syntax trees and the schedule parser."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.exceptions import ScheduleError
from repro.sdf.schedule import (
    Firing,
    Loop,
    LoopedSchedule,
    flat_single_appearance_schedule,
    parse_schedule,
)


class TestNodes:
    def test_firing_rejects_nonpositive_count(self):
        with pytest.raises(ScheduleError):
            Firing("A", 0)

    def test_loop_rejects_empty_body(self):
        with pytest.raises(ScheduleError):
            Loop(2, ())

    def test_loop_rejects_nonpositive_count(self):
        with pytest.raises(ScheduleError):
            Loop(0, (Firing("A"),))

    def test_schedule_rejects_empty(self):
        with pytest.raises(ScheduleError):
            LoopedSchedule([])


class TestParser:
    def test_paper_notation_2b(self):
        # "2B represents the firing sequence BB"
        assert parse_schedule("2B").firing_list() == ["B", "B"]

    def test_paper_notation_nested(self):
        # "2(B(2C)) represents ... BCCBCC"
        assert parse_schedule("2(B(2C))").firing_list() == list("BCCBCC")

    def test_flat_sas(self):
        s = parse_schedule("(3A)(6B)(2C)")
        assert s.firings_per_actor() == {"A": 3, "B": 6, "C": 2}
        assert s.is_single_appearance()
        assert s.is_flat()

    def test_multichar_actor_names(self):
        s = parse_schedule("(2 src pre0)(3 lo0)")
        assert s.firings_per_actor() == {"src": 2, "pre0": 2, "lo0": 3}

    def test_unbalanced_parens(self):
        with pytest.raises(ScheduleError):
            parse_schedule("(2A")
        with pytest.raises(ScheduleError):
            parse_schedule("2A)")

    def test_dangling_count(self):
        with pytest.raises(ScheduleError):
            parse_schedule("(2A)3")

    def test_empty_loop(self):
        with pytest.raises(ScheduleError):
            parse_schedule("()")

    def test_satrec_schedule_parses(self):
        text = "(24(11(4A)B)C G H I(11(4D)E)F K L M 10(N S J T U P))(Q R V 240W)"
        s = parse_schedule(text)
        counts = s.firings_per_actor()
        assert counts["A"] == 1056
        assert counts["B"] == 264
        assert counts["N"] == 240
        assert counts["Q"] == 1
        assert counts["W"] == 240


class TestPrinting:
    @pytest.mark.parametrize(
        "text",
        [
            "(3A)(6B)(2C)",
            "(3A(2B))(2C)",
            "2(B(2C))",
            "(24(11(4A)B)C G H I)(Q R V 240W)",
            "(2 src pre0)(3 lo0 hi0)",
        ],
    )
    def test_round_trip(self, text):
        s = parse_schedule(text)
        again = parse_schedule(str(s))
        assert again.firing_list() == s.firing_list()

    def test_multichar_names_not_glued(self):
        s = LoopedSchedule([Loop(2, (Firing("src"), Firing("pre0")))])
        assert "srcpre0" not in str(s)


class TestQueries:
    def test_lexical_order(self):
        # lexorder((2(3B)(5C))(7A)) = (B, C, A)  [paper section 4]
        s = parse_schedule("(2(3B)(5C))(7A)")
        assert s.lexical_order() == ["B", "C", "A"]

    def test_appearances(self):
        s = parse_schedule("A B A")
        assert s.appearances() == {"A": 2, "B": 1}
        assert not s.is_single_appearance()

    def test_depth(self):
        assert parse_schedule("A B").depth() == 0
        assert parse_schedule("(2A)").depth() == 0  # folded into Firing
        assert parse_schedule("(2A B)").depth() == 1
        assert parse_schedule("(2(3A B)C)").depth() == 2

    def test_is_flat(self):
        assert parse_schedule("(3A)(6B)").is_flat()
        assert not parse_schedule("(3A(2B))").is_flat()

    def test_num_firings(self):
        assert parse_schedule("(3A(2B))(2C)").num_firings() == 3 + 6 + 2


class TestNormalization:
    def test_unit_loops_collapse(self):
        s = LoopedSchedule([Loop(1, (Firing("A"), Firing("B")))])
        n = s.normalized()
        assert n.body == (Firing("A"), Firing("B"))

    def test_nested_single_child_merges(self):
        s = LoopedSchedule([Loop(2, (Loop(3, (Firing("A"), Firing("B"))),))])
        n = s.normalized()
        assert n.body == (Loop(6, (Firing("A"), Firing("B"))),)

    def test_loop_around_single_firing_folds(self):
        s = LoopedSchedule([Loop(4, (Firing("A", 2),))])
        n = s.normalized()
        assert n.body == (Firing("A", 8),)

    def test_normalization_preserves_firing_sequence(self):
        s = parse_schedule("(1(2(1A(3B))))(1C)")
        assert s.normalized().firing_list() == s.firing_list()


class TestFlatSAS:
    def test_construction(self):
        s = flat_single_appearance_schedule(["A", "B"], {"A": 3, "B": 2})
        assert str(s) == "(3A)(2B)"

    def test_missing_actor_raises(self):
        with pytest.raises(ScheduleError):
            flat_single_appearance_schedule(["A", "B"], {"A": 3})


@st.composite
def schedule_trees(draw, actors=("A", "B", "C", "D")):
    """Random schedule AST over a fixed actor set."""
    depth = draw(st.integers(min_value=0, max_value=3))

    def node(d):
        if d == 0 or draw(st.booleans()):
            return Firing(draw(st.sampled_from(actors)),
                          draw(st.integers(min_value=1, max_value=4)))
        body = tuple(
            node(d - 1)
            for _ in range(draw(st.integers(min_value=1, max_value=3)))
        )
        return Loop(draw(st.integers(min_value=1, max_value=4)), body)

    return LoopedSchedule([node(depth) for _ in range(draw(st.integers(1, 3)))])


class TestProperties:
    @given(schedule_trees())
    @settings(max_examples=60, deadline=None)
    def test_print_parse_round_trip(self, schedule):
        text = str(schedule)
        assert parse_schedule(text).firing_list() == schedule.firing_list()

    @given(schedule_trees())
    @settings(max_examples=60, deadline=None)
    def test_firings_per_actor_matches_sequence(self, schedule):
        seq = schedule.firing_list()
        counts = schedule.firings_per_actor()
        assert counts == {a: seq.count(a) for a in set(seq)}

    @given(schedule_trees())
    @settings(max_examples=60, deadline=None)
    def test_normalized_equivalence(self, schedule):
        assert schedule.normalized().firing_list() == schedule.firing_list()
