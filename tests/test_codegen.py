"""Tests for C emission and the shared-memory execution checker."""

import pytest

from repro.exceptions import CodegenError
from repro.sdf.graph import SDFGraph
from repro.sdf.random_graphs import random_sdf_graph
from repro.lifetimes.intervals import extract_lifetimes
from repro.allocation.first_fit import Allocation, ffdur
from repro.allocation.intersection_graph import build_intersection_graph
from repro.codegen.c_emitter import emit_c
from repro.codegen.vm import SharedMemoryVM, run_shared_memory_check
from repro.scheduling.pipeline import implement
from repro.apps import table1_graph


def implemented(name_or_graph):
    g = (
        table1_graph(name_or_graph)
        if isinstance(name_or_graph, str)
        else name_or_graph
    )
    result = implement(g, "rpmc")
    return g, result


class TestEmitC:
    def test_contains_pool_and_buffers(self):
        g, result = implemented("16qamModem")
        code = emit_c(g, result.lifetimes, result.allocation)
        assert f"static token_t memory[{result.allocation.total}];" in code
        assert "#define BUF_BITS_MAPPER" in code
        assert "void run_one_period(void)" in code
        assert "int main(void)" in code

    def test_every_actor_fired(self):
        g, result = implemented("4pamxmitrec")
        code = emit_c(g, result.lifetimes, result.allocation)
        for actor in g.actor_names():
            assert f"fire_{actor}(" in code

    def test_loop_structure_present(self):
        g, result = implemented("satrec")
        code = emit_c(g, result.lifetimes, result.allocation)
        assert "for (int i" in code

    def test_delay_handling(self):
        g = SDFGraph()
        g.add_actors("AB")
        g.add_edge("A", "B", 1, 1, delay=2)
        result = implement(g, "natural")
        code = emit_c(g, result.lifetimes, result.allocation)
        assert "init_delays" in code
        assert "%" in code  # circular cursor arithmetic

    def test_missing_allocation_raises(self):
        g, result = implemented("4pamxmitrec")
        bad = Allocation(offsets={}, total=0, order=[], graph=result.allocation.graph)
        with pytest.raises(CodegenError):
            emit_c(g, result.lifetimes, bad)

    def test_balanced_braces(self):
        g, result = implemented("blockVox")
        code = emit_c(g, result.lifetimes, result.allocation)
        assert code.count("{") == code.count("}")


class TestSharedMemoryVM:
    def test_runs_clean_on_correct_allocation(self):
        g, result = implemented("overAddFFT")
        fires = run_shared_memory_check(g, result.lifetimes, result.allocation)
        assert fires > 0

    def test_detects_corrupted_allocation(self):
        """Colocating overlapping buffers must be caught as corruption.

        The coarse lifetime model is conservative, so not every
        coarse-overlapping pair conflicts at access granularity (an
        actor's reads complete before its writes within one firing) —
        but in a loop-interleaved schedule most pairs must.  Try every
        overlapping pair and require that most are detected.
        """
        g, result = implemented("qmf23_2d")
        buffers = result.lifetimes.as_list()
        wig = build_intersection_graph(buffers)
        detected = 0
        tried = 0
        for i in range(len(buffers)):
            for j in wig.neighbors[i]:
                if j < i or not buffers[i].size or not buffers[j].size:
                    continue
                tried += 1
                offsets = dict(result.allocation.offsets)
                offsets[buffers[j].name] = offsets[buffers[i].name]
                bad = Allocation(
                    offsets=offsets,
                    total=max(offsets[b.name] + b.size for b in buffers),
                    order=result.allocation.order,
                    graph=wig,
                )
                vm = SharedMemoryVM(g, result.lifetimes, bad)
                try:
                    vm.run(periods=1)
                except CodegenError:
                    detected += 1
        assert tried > 0
        assert detected >= tried // 2, (
            f"only {detected} of {tried} colocated pairs detected"
        )

    def test_multiple_periods(self):
        g, result = implemented("16qamModem")
        run_shared_memory_check(g, result.lifetimes, result.allocation, periods=3)

    def test_delayed_graph_execution(self):
        g = SDFGraph()
        g.add_actors("ABC")
        g.add_edge("A", "B", 2, 1, delay=1)
        g.add_edge("B", "C", 1, 3)
        result = implement(g, "natural")
        run_shared_memory_check(g, result.lifetimes, result.allocation, periods=3)

    @pytest.mark.parametrize("seed", range(8))
    def test_random_graphs_execute(self, seed):
        g = random_sdf_graph(10, seed=200 + seed)
        result = implement(g, "apgan")
        run_shared_memory_check(g, result.lifetimes, result.allocation, periods=2)

    def test_token_sizes_respected(self):
        g = SDFGraph()
        g.add_actors("AB")
        g.add_edge("A", "B", 2, 1, token_size=3)
        result = implement(g, "natural")
        assert result.allocation.total >= 6
        run_shared_memory_check(g, result.lifetimes, result.allocation)


import shutil
import subprocess

requires_gcc = pytest.mark.skipif(
    shutil.which("gcc") is None, reason="no C compiler available"
)


def _compile_and_run(code, tmp_path, name="gen"):
    source = tmp_path / f"{name}.c"
    source.write_text(code)
    exe = tmp_path / name
    compile_result = subprocess.run(
        ["gcc", "-O2", "-Wall", "-Werror", "-o", str(exe), str(source)],
        capture_output=True,
        text=True,
    )
    assert compile_result.returncode == 0, compile_result.stderr
    return subprocess.run(
        [str(exe)], capture_output=True, text=True, timeout=60
    )


@requires_gcc
class TestGeneratedCSelfCheck:
    """The emitted C, compiled with gcc, proves the allocation on metal."""

    @pytest.mark.parametrize(
        "name", ["qmf23_2d", "satrec", "blockVox", "overAddFFT", "phasedArray"]
    )
    def test_practical_system_self_checks(self, name, tmp_path):
        g, result = implemented(name)
        code = emit_c(
            g, result.lifetimes, result.allocation, instrument=True, periods=3
        )
        run = _compile_and_run(code, tmp_path, name)
        assert run.returncode == 0, run.stderr
        assert "SELFCHECK OK" in run.stdout

    def test_delayed_edges_self_check(self, tmp_path):
        g = SDFGraph()
        g.add_actors("ABC")
        g.add_edge("A", "B", 2, 1, delay=1)
        g.add_edge("B", "C", 1, 3, delay=2)
        result = implement(g, "natural")
        code = emit_c(
            g, result.lifetimes, result.allocation, instrument=True, periods=4
        )
        run = _compile_and_run(code, tmp_path, "delayed")
        assert run.returncode == 0, run.stderr
        assert "SELFCHECK OK" in run.stdout

    def test_corrupted_allocation_fails_in_c(self, tmp_path):
        """The compiled self-check catches an unsafe overlay, like the VM."""
        g, result = implemented("qmf23_2d")
        buffers = result.lifetimes.as_list()
        wig = build_intersection_graph(buffers)
        failed = 0
        tried = 0
        for i in range(len(buffers)):
            for j in sorted(wig.neighbors[i]):
                if j < i or not buffers[i].size or not buffers[j].size:
                    continue
                tried += 1
                offsets = dict(result.allocation.offsets)
                offsets[buffers[j].name] = offsets[buffers[i].name]
                bad = Allocation(
                    offsets=offsets,
                    total=max(offsets[b.name] + b.size for b in buffers),
                    order=result.allocation.order,
                    graph=wig,
                )
                code = emit_c(
                    g, result.lifetimes, bad, instrument=True, periods=1
                )
                run = _compile_and_run(code, tmp_path, f"bad{i}_{j}")
                if run.returncode != 0 and "SELFCHECK FAIL" in run.stderr:
                    failed += 1
                if tried >= 6:
                    break
            if tried >= 6:
                break
        assert tried > 0
        assert failed >= tried // 2
