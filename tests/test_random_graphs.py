"""Tests for the random SDF graph generators."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.sdf.random_graphs import (
    random_broadcast_sdf_graph,
    random_chain_graph,
    random_cyclic_sdf_graph,
    random_sdf_graph,
)
from repro.sdf.repetitions import is_consistent
from repro.sdf.simulate import has_valid_schedule, validate_schedule


class TestRandomSDF:
    def test_rejects_zero_actors(self):
        with pytest.raises(ValueError):
            random_sdf_graph(0)

    def test_single_actor(self):
        g = random_sdf_graph(1, seed=0)
        assert g.num_actors == 1
        assert g.num_edges == 0

    def test_deterministic_for_seed(self):
        a = random_sdf_graph(30, seed=99)
        b = random_sdf_graph(30, seed=99)
        assert [e.key for e in a.edges()] == [e.key for e in b.edges()]
        assert [
            (e.production, e.consumption) for e in a.edges()
        ] == [(e.production, e.consumption) for e in b.edges()]

    def test_different_seeds_differ(self):
        a = random_sdf_graph(30, seed=1)
        b = random_sdf_graph(30, seed=2)
        assert [e.key for e in a.edges()] != [e.key for e in b.edges()]

    @given(st.integers(min_value=2, max_value=60), st.integers(min_value=0, max_value=5000))
    @settings(max_examples=40, deadline=None)
    def test_always_connected_acyclic_consistent(self, n, seed):
        g = random_sdf_graph(n, seed=seed)
        assert g.num_actors == n
        assert g.is_connected()
        assert g.is_acyclic()
        assert is_consistent(g)

    def test_schedulable(self):
        for seed in range(5):
            g = random_sdf_graph(20, seed=seed)
            assert has_valid_schedule(g)

    def test_extra_edges_increase_density(self):
        sparse = random_sdf_graph(40, seed=5, extra_edge_fraction=0.0)
        dense = random_sdf_graph(40, seed=5, extra_edge_fraction=1.0)
        assert sparse.num_edges == 39  # spanning tree only
        assert dense.num_edges > sparse.num_edges


class TestRandomChain:
    def test_is_chain(self):
        g = random_chain_graph(10, seed=0)
        assert g.chain_order() is not None
        assert g.num_edges == 9

    def test_consistent(self):
        for seed in range(5):
            assert is_consistent(random_chain_graph(8, seed=seed))

    def test_rejects_zero(self):
        with pytest.raises(ValueError):
            random_chain_graph(0)

    def test_deterministic(self):
        a = random_chain_graph(12, seed=4)
        b = random_chain_graph(12, seed=4)
        assert [
            (e.production, e.consumption) for e in a.edges()
        ] == [(e.production, e.consumption) for e in b.edges()]


class TestRandomBroadcast:
    @given(
        st.integers(min_value=3, max_value=20),
        st.integers(min_value=0, max_value=2000),
    )
    @settings(max_examples=30, deadline=None)
    def test_consistent_acyclic_with_groups(self, n, seed):
        g = random_broadcast_sdf_graph(n, seed=seed)
        assert g.is_acyclic()
        assert is_consistent(g)
        assert g.has_broadcasts()
        for members in g.broadcast_groups().values():
            assert len(members) >= 2
            assert len({m.source for m in members}) == 1
            assert len({m.sink for m in members}) == len(members)

    def test_schedulable(self):
        for seed in range(5):
            assert has_valid_schedule(
                random_broadcast_sdf_graph(8, seed=seed)
            )

    def test_deterministic_for_seed(self):
        a = random_broadcast_sdf_graph(10, seed=3)
        b = random_broadcast_sdf_graph(10, seed=3)
        assert [
            (e.key, e.broadcast) for e in a.edges()
        ] == [(e.key, e.broadcast) for e in b.edges()]

    def test_rejects_tiny_graphs(self):
        with pytest.raises(ValueError):
            random_broadcast_sdf_graph(2, seed=0)


class TestRandomCyclic:
    @given(
        st.integers(min_value=2, max_value=20),
        st.integers(min_value=0, max_value=2000),
    )
    @settings(max_examples=30, deadline=None)
    def test_cyclic_consistent_and_schedulable(self, n, seed):
        from repro.scheduling.cyclic import schedule_cyclic

        g = random_cyclic_sdf_graph(n, seed=seed)
        assert not g.is_acyclic()
        assert is_consistent(g)
        # Deadlock-free by construction: the feedback delay covers a
        # full period, so the graph always schedules.
        result = schedule_cyclic(g)
        validate_schedule(g, result.schedule)

    def test_extra_delay_factor_still_schedulable(self):
        from repro.scheduling.cyclic import schedule_cyclic

        g = random_cyclic_sdf_graph(8, seed=7, num_feedback=3, delay_factor=2)
        assert not g.is_acyclic()
        validate_schedule(g, schedule_cyclic(g).schedule)

    def test_deterministic_for_seed(self):
        a = random_cyclic_sdf_graph(9, seed=11, num_feedback=2)
        b = random_cyclic_sdf_graph(9, seed=11, num_feedback=2)
        assert [e.key for e in a.edges()] == [e.key for e in b.edges()]

    def test_rejects_single_actor(self):
        with pytest.raises(ValueError):
            random_cyclic_sdf_graph(1, seed=0)

    def test_rejects_zero_delay_factor(self):
        with pytest.raises(ValueError):
            random_cyclic_sdf_graph(4, seed=0, delay_factor=0)
