"""Tests for the random SDF graph generators."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.sdf.random_graphs import random_chain_graph, random_sdf_graph
from repro.sdf.repetitions import is_consistent
from repro.sdf.simulate import has_valid_schedule


class TestRandomSDF:
    def test_rejects_zero_actors(self):
        with pytest.raises(ValueError):
            random_sdf_graph(0)

    def test_single_actor(self):
        g = random_sdf_graph(1, seed=0)
        assert g.num_actors == 1
        assert g.num_edges == 0

    def test_deterministic_for_seed(self):
        a = random_sdf_graph(30, seed=99)
        b = random_sdf_graph(30, seed=99)
        assert [e.key for e in a.edges()] == [e.key for e in b.edges()]
        assert [
            (e.production, e.consumption) for e in a.edges()
        ] == [(e.production, e.consumption) for e in b.edges()]

    def test_different_seeds_differ(self):
        a = random_sdf_graph(30, seed=1)
        b = random_sdf_graph(30, seed=2)
        assert [e.key for e in a.edges()] != [e.key for e in b.edges()]

    @given(st.integers(min_value=2, max_value=60), st.integers(min_value=0, max_value=5000))
    @settings(max_examples=40, deadline=None)
    def test_always_connected_acyclic_consistent(self, n, seed):
        g = random_sdf_graph(n, seed=seed)
        assert g.num_actors == n
        assert g.is_connected()
        assert g.is_acyclic()
        assert is_consistent(g)

    def test_schedulable(self):
        for seed in range(5):
            g = random_sdf_graph(20, seed=seed)
            assert has_valid_schedule(g)

    def test_extra_edges_increase_density(self):
        sparse = random_sdf_graph(40, seed=5, extra_edge_fraction=0.0)
        dense = random_sdf_graph(40, seed=5, extra_edge_fraction=1.0)
        assert sparse.num_edges == 39  # spanning tree only
        assert dense.num_edges > sparse.num_edges


class TestRandomChain:
    def test_is_chain(self):
        g = random_chain_graph(10, seed=0)
        assert g.chain_order() is not None
        assert g.num_edges == 9

    def test_consistent(self):
        for seed in range(5):
            assert is_consistent(random_chain_graph(8, seed=seed))

    def test_rejects_zero(self):
        with pytest.raises(ValueError):
            random_chain_graph(0)

    def test_deterministic(self):
        a = random_chain_graph(12, seed=4)
        b = random_chain_graph(12, seed=4)
        assert [
            (e.production, e.consumption) for e in a.edges()
        ] == [(e.production, e.consumption) for e in b.edges()]
