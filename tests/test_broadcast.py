"""Broadcast edges: one producer, k consumers, one shared buffer.

Covers the graph API (group construction and its invariants), JSON
round-tripping, lifetime extraction (the shared buffer is sized by the
*latest* consumer stop time and counted once), the sharing win over the
k-parallel-edges model, and execution equivalence across the VM, the
generated Python module, and the gcc-compiled C self-check.
"""

import re
import shutil
import subprocess

import pytest

from repro.exceptions import GraphStructureError
from repro.sdf.graph import SDFGraph
from repro.sdf.io import from_json, to_json
from repro.sdf.random_graphs import random_broadcast_sdf_graph
from repro.sdf.repetitions import is_consistent, repetitions_vector
from repro.sdf.simulate import buffer_memory_nonshared, max_live_tokens
from repro.scheduling.pipeline import implement
from repro.allocation.verify import verify_allocation
from repro.codegen.vm import SharedMemoryVM
from repro.codegen.c_emitter import emit_c
from repro.check.oracles import broadcast_oracles, build_artifacts

requires_cc = pytest.mark.skipif(
    shutil.which("cc") is None, reason="no system C compiler (cc)"
)


def diamond(delay: int = 0) -> SDFGraph:
    """S broadcasts to A and B; both feed T.  q = S:1 A:2 B:1 T:1."""
    g = SDFGraph("bdiamond")
    g.add_actors("SABT")
    g.add_broadcast("S", ["A", "B"], production=2, consumptions=[1, 2],
                    delay=delay)
    g.add_edge("A", "T", 1, 2)
    g.add_edge("B", "T", 1, 1)
    return g


class TestGraphAPI:
    def test_group_construction(self):
        g = diamond()
        assert g.has_broadcasts()
        assert g.broadcast_names() == {"bc0"}
        members = g.broadcast_members("bc0")
        assert [m.sink for m in members] == ["A", "B"]
        assert all(m.source == "S" for m in members)
        assert all(m.production == 2 for m in members)
        assert [m.consumption for m in members] == [1, 2]
        assert is_consistent(g)
        assert repetitions_vector(g) == {"S": 1, "A": 2, "B": 1, "T": 1}

    def test_auto_naming_is_fresh(self):
        g = SDFGraph()
        g.add_actors("SABCD")
        g.add_broadcast("S", ["A", "B"], 1, [1, 1])
        g.add_broadcast("S", ["C", "D"], 1, [1, 1])
        assert g.broadcast_names() == {"bc0", "bc1"}

    def test_duplicate_group_name_rejected(self):
        g = diamond()
        with pytest.raises(GraphStructureError):
            g.add_broadcast("A", ["T"], 1, [1], name="bc0")

    def test_members_must_share_production(self):
        g = diamond()
        with pytest.raises(GraphStructureError):
            g.add_edge("S", "T", 3, 1, broadcast="bc0")

    def test_members_must_share_source(self):
        g = diamond()
        with pytest.raises(GraphStructureError):
            g.add_edge("A", "T", 2, 1, broadcast="bc0")

    def test_duplicate_sink_rejected(self):
        g = diamond()
        with pytest.raises(GraphStructureError):
            g.add_edge("S", "A", 2, 1, broadcast="bc0")

    def test_self_loop_member_rejected(self):
        g = diamond()
        with pytest.raises(GraphStructureError):
            g.add_edge("S", "S", 2, 2, broadcast="bc0")

    def test_without_broadcasts_keeps_dynamics(self):
        g = diamond()
        flat = g.without_broadcasts()
        assert not flat.has_broadcasts()
        assert flat.num_edges == g.num_edges
        assert repetitions_vector(flat) == repetitions_vector(g)


class TestIORoundTrip:
    @pytest.mark.parametrize("delay", [0, 2])
    def test_json_preserves_groups(self, delay):
        g = diamond(delay=delay)
        back = from_json(to_json(g))
        assert back.broadcast_names() == {"bc0"}
        assert [
            (m.sink, m.consumption, m.delay)
            for m in back.broadcast_members("bc0")
        ] == [
            (m.sink, m.consumption, m.delay)
            for m in g.broadcast_members("bc0")
        ]

    def test_ordinary_edges_have_no_broadcast_field(self):
        doc = to_json(diamond())
        by_sink = {e["sink"]: e for e in doc["edges"]}
        assert by_sink["A"].get("broadcast") == "bc0"
        assert "broadcast" not in by_sink["T"]


class TestLifetimesAndSharing:
    def test_group_buffer_counted_once(self):
        g = diamond()
        result = implement(g, "apgan")
        lifetimes = result.lifetimes
        members = g.broadcast_members("bc0")
        assert lifetimes.lifetimes[members[0].key] is (
            lifetimes.lifetimes[members[1].key]
        )
        assert "bc0" in lifetimes.groups
        # as_list dedupes: 2 ordinary edges + 1 shared group buffer.
        assert len(lifetimes.as_list()) == 3

    def test_shared_cost_beats_parallel_model(self):
        g = diamond()
        shared = implement(g, "apgan")
        flat = implement(g.without_broadcasts(), "apgan")
        assert shared.lifetimes.total_size() <= flat.lifetimes.total_size()
        assert shared.allocation.total <= flat.allocation.total
        # The same schedule's unshared token memory also shrinks: the
        # group's buffer holds max(member counts), not their sum.
        assert buffer_memory_nonshared(g, flat.sdppo_schedule) <= (
            buffer_memory_nonshared(g.without_broadcasts(),
                                    flat.sdppo_schedule)
        )
        assert max_live_tokens(g, flat.sdppo_schedule) <= (
            max_live_tokens(g.without_broadcasts(), flat.sdppo_schedule)
        )

    def test_allocation_verifies(self):
        g = diamond()
        result = implement(g, "rpmc")
        verify_allocation(
            result.lifetimes.as_list(), result.allocation
        )

    def test_sharing_win_oracle_clean_on_random_graphs(self):
        for seed in (0, 1, 2, 3):
            g = random_broadcast_sdf_graph(
                6, seed=seed, num_groups=2, max_repetition=5,
                delayed_group_fraction=0.5,
            )
            art = build_artifacts(g, method="rpmc", seed=seed)
            assert broadcast_oracles(art) == []


class TestExecution:
    @pytest.mark.parametrize("delay", [0, 2])
    def test_vm_runs_and_counts_match(self, delay):
        g = diamond(delay=delay)
        result = implement(g, "apgan")
        vm = SharedMemoryVM(g, result.lifetimes, result.allocation)
        vm.run(periods=2)
        q = repetitions_vector(g)
        assert vm.firings_per_actor == {a: 2 * q[a] for a in q}
        assert vm.peak_address <= result.allocation.total

    def test_full_oracle_battery_clean(self):
        from repro.check.oracles import run_oracles

        art = build_artifacts(diamond(), method="apgan")
        assert run_oracles(art) == []

    def test_c_source_has_one_group_buffer(self):
        g = diamond()
        result = implement(g, "apgan")
        code = emit_c(g, result.lifetimes, result.allocation)
        # One shared define for the group, none per member edge.
        assert len(re.findall(r"#define BUF_S__BC0 ", code)) == 1
        assert "BUF_S_A" not in code and "BUF_S_B" not in code

    @requires_cc
    @pytest.mark.parametrize("delay", [0, 2])
    def test_c_self_check_passes(self, delay, tmp_path):
        g = diamond(delay=delay)
        result = implement(g, "apgan")
        code = emit_c(
            g, result.lifetimes, result.allocation,
            instrument=True, periods=2,
        )
        source = tmp_path / "bdiamond.c"
        source.write_text(code)
        exe = tmp_path / "bdiamond"
        build = subprocess.run(
            ["cc", "-O2", "-Wall", "-Werror", "-o", str(exe), str(source)],
            capture_output=True, text=True,
        )
        assert build.returncode == 0, build.stderr
        run = subprocess.run(
            [str(exe)], capture_output=True, text=True, timeout=60
        )
        assert run.returncode == 0, run.stderr
        assert "SELFCHECK OK" in run.stdout
