"""Shrunk counterexamples found by ``python -m repro check`` — now fixed.

Each case below is a minimal graph the counterexample shrinker produced
from a failing random trial.  Both originally exposed the same
modelling bug around delayed edges: the coarse live-array model
(``max_live_tokens``) sized every episode as all words transferred
through it, while lifetime extraction sizes delayed edges as *circular*
buffers at peak occupancy; and EQ 5's ``max(left, right)`` combiner
assumed the two halves of a split never hold memory simultaneously,
which a delayed edge internal to one half (live across the whole
period) violates.  The check harness used to scope its
``mlt <= sdppo_cost`` / ``mlt <= allocation.total`` oracles to
delayless graphs to work around the mismatch.

Both sides are now reconciled: the coarse model sizes delayed-edge
episodes at peak occupancy times token size (the circular-buffer
capacity), and the SDPPO recurrences carry delayed-edge buffers as an
always-summed *persistent* component next to the ``max``-combined
episodic one.  These tests pin the previously-failing chains as
passing — cost, coarse peak, and packed total all agree — and the
oracles in :mod:`repro.check.oracles` assert the orderings
unconditionally, delays included.
"""

from repro.scheduling.sdppo import sdppo
from repro.scheduling.chain_sdppo import chain_sdppo
from repro.sdf.graph import SDFGraph
from repro.sdf.repetitions import repetitions_vector
from repro.sdf.simulate import max_live_tokens
from repro.allocation.verify import verify_allocation
from repro.codegen.vm import SharedMemoryVM
from repro.check.oracles import build_artifacts, run_oracles
from repro.check.reference import reference_peak_token_words


def delayed_words_chain() -> SDFGraph:
    """Shrunk from check-harness seed 100000 (trial 0 of --seed 1)."""
    g = SDFGraph("chain_delay_words")
    for n in ("n0", "n1", "n2"):
        g.add_actor(n)
    g.add_edge("n0", "n1", 1, 1, delay=1)
    g.add_edge("n1", "n2", 1, 2)
    return g


def internal_delay_chain() -> SDFGraph:
    """Shrunk from check-harness seed 0 (trial 0 of --seed 0)."""
    g = SDFGraph("chain_internal_delay")
    for n in ("n4", "n0", "n2", "n5"):
        g.add_actor(n)
    g.add_edge("n4", "n0", 1, 1)
    g.add_edge("n0", "n2", 1, 1)
    g.add_edge("n2", "n5", 1, 1, delay=1)
    return g


class TestCircularSizingClosesCoarseGap:
    """3-actor chain that used to show ``mlt`` > ``allocation.total``.

    The delayed edge's coarse episode used to be sized at initial +
    produced tokens (3 words) while its circular buffer peaks at 2; the
    coarse live total (5) then exceeded the packed allocation (4).
    With circular sizing both models meet at 4 words.
    """

    def test_models_agree(self):
        g = delayed_words_chain()
        art = build_artifacts(g, method="rpmc")
        mlt = max_live_tokens(g, art.result.sdppo_schedule)
        assert str(art.result.sdppo_schedule) == "(2n0 n1)n2"
        assert art.result.sdppo_cost == 4
        assert mlt == 4
        assert art.result.allocation.total == 4
        assert mlt <= art.result.sdppo_cost
        assert mlt <= art.result.allocation.total

    def test_allocation_is_feasible(self):
        g = delayed_words_chain()
        art = build_artifacts(g, method="rpmc")
        # The unconditional bound: peak simultaneous token words.
        occ = reference_peak_token_words(g, art.result.sdppo_schedule)
        assert occ == 3
        assert occ <= art.result.allocation.total
        verify_allocation(
            art.result.lifetimes.as_list(), art.result.allocation
        )
        vm = SharedMemoryVM(g, art.result.lifetimes, art.result.allocation)
        vm.run(periods=2)

    def test_oracle_battery_clean(self):
        assert run_oracles(build_artifacts(delayed_words_chain())) == []


class TestEq5PersistentSplitCoversInternalDelay:
    """4-actor chain that used to show ``sdppo_cost`` < ``mlt``.

    The delayed edge internal to the right half is live from step 0,
    overlapping the left half — EQ 5's plain ``max`` undershot it
    (cost 3 against a true requirement of 4).  The episodic/persistent
    split adds the delayed edge's circular buffer outside the ``max``,
    so the predicted cost now covers the realized peak exactly.
    """

    def test_cost_covers_coarse_peak(self):
        g = internal_delay_chain()
        art = build_artifacts(g, method="rpmc")
        mlt = max_live_tokens(g, art.result.sdppo_schedule)
        assert art.result.sdppo_cost == 4
        assert mlt == 4
        assert art.result.allocation.total == 4
        assert mlt <= art.result.sdppo_cost
        assert mlt <= art.result.allocation.total

    def test_eq5_and_chain_dp_agree(self):
        g = internal_delay_chain()
        q = repetitions_vector(g)
        order = g.topological_order()
        eq5 = sdppo(g, order, q)
        chain = chain_sdppo(g)
        assert eq5.cost == 4
        assert chain.cost == 4

    def test_allocation_covers_true_requirement(self):
        g = internal_delay_chain()
        art = build_artifacts(g, method="rpmc")
        occ = reference_peak_token_words(g, art.result.sdppo_schedule)
        assert occ <= art.result.allocation.total
        verify_allocation(
            art.result.lifetimes.as_list(), art.result.allocation
        )
        vm = SharedMemoryVM(g, art.result.lifetimes, art.result.allocation)
        vm.run(periods=2)

    def test_oracle_battery_clean(self):
        assert run_oracles(build_artifacts(internal_delay_chain())) == []
