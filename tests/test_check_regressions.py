"""Shrunk counterexamples found by ``python -m repro check``.

Each case below is a minimal graph the counterexample shrinker produced
from a failing random trial.  Both expose the same modelling boundary:
the *coarse* live-array model (``max_live_tokens``, and the EQ 5 SDPPO
recurrence built on it) sizes every live episode as all words
transferred during it, while lifetime extraction sizes delayed edges as
*circular* buffers at peak occupancy — which is smaller.  On delayless
graphs the two agree and the oracles assert it; with delays the coarse
figures may exceed (or, for the EQ 5 split, undershoot) the realized
allocation, and only the occupancy bound holds unconditionally.

These tests pin (a) the gap itself, so a future change to either model
is noticed, and (b) the facts that make the implementation safe despite
it: occupancy never exceeds the allocation, the VM executes the
placement with full token integrity, and Definition-5 verification
accepts it.  The oracle battery must stay clean on both graphs.
"""

from repro.sdf.graph import SDFGraph
from repro.sdf.simulate import max_live_tokens
from repro.allocation.verify import verify_allocation
from repro.codegen.vm import SharedMemoryVM
from repro.check.oracles import build_artifacts, run_oracles
from repro.check.reference import reference_peak_token_words


def delayed_words_chain() -> SDFGraph:
    """Shrunk from check-harness seed 100000 (trial 0 of --seed 1)."""
    g = SDFGraph("chain_delay_words")
    for n in ("n0", "n1", "n2"):
        g.add_actor(n)
    g.add_edge("n0", "n1", 1, 1, delay=1)
    g.add_edge("n1", "n2", 1, 2)
    return g


def internal_delay_chain() -> SDFGraph:
    """Shrunk from check-harness seed 0 (trial 0 of --seed 0)."""
    g = SDFGraph("chain_internal_delay")
    for n in ("n4", "n0", "n2", "n5"):
        g.add_actor(n)
    g.add_edge("n4", "n0", 1, 1)
    g.add_edge("n0", "n2", 1, 1)
    g.add_edge("n2", "n5", 1, 1, delay=1)
    return g


class TestCoarseModelExceedsCircularAllocation:
    """3-actor chain: ``max_live_tokens`` > ``allocation.total``.

    The delayed edge's coarse episode holds initial + produced tokens
    (3 words) but its circular buffer peaks at 2 tokens, so the shared
    allocation (4) is smaller than the coarse live total (5) — and
    still correct.
    """

    def test_gap_is_present(self):
        g = delayed_words_chain()
        art = build_artifacts(g, method="rpmc")
        mlt = max_live_tokens(g, art.result.sdppo_schedule)
        assert mlt == 5
        assert art.result.allocation.total == 4
        assert mlt > art.result.allocation.total

    def test_allocation_is_nevertheless_feasible(self):
        g = delayed_words_chain()
        art = build_artifacts(g, method="rpmc")
        # The unconditional bound: peak simultaneous token words.
        occ = reference_peak_token_words(g, art.result.sdppo_schedule)
        assert occ == 3
        assert occ <= art.result.allocation.total
        verify_allocation(
            art.result.lifetimes.as_list(), art.result.allocation
        )
        vm = SharedMemoryVM(g, art.result.lifetimes, art.result.allocation)
        vm.run(periods=2)

    def test_oracle_battery_clean(self):
        assert run_oracles(build_artifacts(delayed_words_chain())) == []


class TestEq5UndershootsOnInternalDelay:
    """4-actor chain: ``sdppo_cost`` < ``max_live_tokens``.

    EQ 5's ``max(left, right)`` combiner assumes the two halves of a
    split never hold memory simultaneously; a delayed edge internal to
    one half is live from step 0 (whole-period envelope), overlapping
    the other half.  The DP is exact for delayless graphs only — an
    estimate here, and the realized allocation (4) covers the true
    requirement regardless.
    """

    def test_gap_is_present(self):
        g = internal_delay_chain()
        art = build_artifacts(g, method="rpmc")
        mlt = max_live_tokens(g, art.result.sdppo_schedule)
        assert art.result.sdppo_cost == 3
        assert mlt == 4
        assert art.result.sdppo_cost < mlt

    def test_allocation_covers_true_requirement(self):
        g = internal_delay_chain()
        art = build_artifacts(g, method="rpmc")
        assert art.result.allocation.total == 4
        occ = reference_peak_token_words(g, art.result.sdppo_schedule)
        assert occ <= art.result.allocation.total
        verify_allocation(
            art.result.lifetimes.as_list(), art.result.allocation
        )
        vm = SharedMemoryVM(g, art.result.lifetimes, art.result.allocation)
        vm.run(periods=2)

    def test_oracle_battery_clean(self):
        assert run_oracles(build_artifacts(internal_delay_chain())) == []
