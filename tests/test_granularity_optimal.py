"""Tests for the granularity sweep (figure 3) and the exact DSA oracle."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.sdf.graph import SDFGraph
from repro.sdf.schedule import parse_schedule
from repro.sdf.random_graphs import random_chain_graph
from repro.lifetimes.granularity import fine_grained_peak, granularity_levels
from repro.lifetimes.periodic import PeriodicLifetime
from repro.allocation.clique import mcw_pessimistic
from repro.allocation.first_fit import ffdur, ffstart
from repro.allocation.optimal import optimal_allocation
from repro.allocation.verify import verify_allocation
from repro.scheduling.dppo import dppo


class TestGranularity:
    def paper_fragment(self):
        """Section 5's example: 7(5A 2(2B 3C)), C producing 1/firing."""
        g = SDFGraph()
        g.add_actors("ABCD")
        g.add_edge("A", "B", 4, 5)     # 5A then 2(2B...): 20 tokens
        g.add_edge("B", "C", 3, 2)     # 2B then 3C per inner loop
        g.add_edge("C", "D", 1, 42)    # C -> D, 1 token per firing
        schedule = parse_schedule("(7(5A)(2(2B)(3C)))(1D)")
        return g, schedule

    def test_monotone_non_increasing(self):
        g, s = self.paper_fragment()
        levels = granularity_levels(g, s)
        values = [v for _, v in levels]
        assert values == sorted(values, reverse=True)

    def test_coarser_at_least_fine(self):
        g, s = self.paper_fragment()
        fine = fine_grained_peak(g, s)
        for _, v in granularity_levels(g, s):
            assert v >= fine

    def test_depths_cover_nesting(self):
        g, s = self.paper_fragment()
        levels = granularity_levels(g, s)
        assert levels[0][0] == 0
        assert len(levels) >= 3  # schedule has two loop levels

    @pytest.mark.parametrize("seed", range(4))
    def test_random_chain_monotone(self, seed):
        g = random_chain_graph(5, seed=seed)
        s = dppo(g, g.chain_order()).schedule
        levels = granularity_levels(g, s)
        values = [v for _, v in levels]
        assert values == sorted(values, reverse=True)
        assert values[-1] >= fine_grained_peak(g, s)

    def test_single_firing_schedule(self):
        g = SDFGraph()
        g.add_actors("AB")
        g.add_edge("A", "B", 1, 1)
        levels = granularity_levels(g, parse_schedule("A B"))
        assert levels[0][1] == 1


def solid(name, size, start, duration):
    return PeriodicLifetime(name=name, size=size, start=start, duration=duration)


class TestOptimalDSA:
    def test_beats_or_matches_first_fit(self):
        buffers = [
            solid("a", 4, 0, 6), solid("b", 3, 2, 6),
            solid("c", 2, 5, 6), solid("d", 4, 9, 4),
        ]
        opt = optimal_allocation(buffers)
        verify_allocation(buffers, opt)
        assert opt.total <= ffdur(buffers).total
        assert opt.total <= ffstart(buffers).total

    def test_at_least_mcw(self):
        buffers = [solid("a", 3, 0, 5), solid("b", 4, 2, 5), solid("c", 2, 3, 5)]
        opt = optimal_allocation(buffers)
        assert opt.total == mcw_pessimistic(buffers) == 9

    def test_finds_interleaving_optimum(self):
        """First-fit-by-duration can be suboptimal; the exact solver
        must find the interleaved packing."""
        buffers = [
            solid("long", 2, 0, 10),
            solid("left", 3, 0, 4),
            solid("right", 3, 6, 4),
            solid("mid", 2, 4, 2),
        ]
        opt = optimal_allocation(buffers)
        verify_allocation(buffers, opt)
        assert opt.total == 5  # long + max(left/right/mid layers)

    def test_zero_size_buffers(self):
        buffers = [solid("a", 2, 0, 3), solid("z", 0, 0, 9)]
        opt = optimal_allocation(buffers)
        assert opt.total == 2
        assert "z" in opt.offsets

    def test_empty_instance(self):
        opt = optimal_allocation([])
        assert opt.total == 0

    @given(st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=40, deadline=None)
    def test_random_instances_bracketed(self, seed):
        import random as _random
        rng = _random.Random(seed)
        buffers = [
            solid(
                f"b{i}", rng.randint(1, 4), rng.randint(0, 8),
                rng.randint(1, 6),
            )
            for i in range(rng.randint(2, 7))
        ]
        opt = optimal_allocation(buffers)
        verify_allocation(buffers, opt)
        mcw = mcw_pessimistic(buffers)  # exact for solid instances
        ff = min(ffdur(buffers).total, ffstart(buffers).total)
        assert mcw <= opt.total <= ff
        # Known bound: chromatic number <= 1.25 * MCW is conjectured
        # tight; on small instances we should stay well within 2x.
        assert opt.total <= 2 * mcw
