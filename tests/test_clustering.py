"""Tests for the cluster graph substrate used by APGAN."""

import pytest

from repro.exceptions import GraphStructureError
from repro.sdf.clustering import ClusterGraph
from repro.sdf.graph import SDFGraph


def fork_join():
    """A -> B, A -> C, B -> D, C -> D with repetitions (1, 2, 3, 6)."""
    g = SDFGraph()
    g.add_actors("ABCD")
    g.add_edge("A", "B", 2, 1)
    g.add_edge("A", "C", 3, 1)
    g.add_edge("B", "D", 3, 1)
    g.add_edge("C", "D", 2, 1)
    return g


class TestBasics:
    def test_initial_singletons(self):
        cg = ClusterGraph(fork_join())
        assert cg.num_clusters() == 4
        for a in "ABCD":
            assert cg.cluster(cg.cluster_id_of(a)).members == frozenset([a])

    def test_initial_repetitions(self):
        cg = ClusterGraph(fork_join())
        assert cg.cluster(cg.cluster_id_of("D")).repetitions == 6

    def test_adjacent_pairs(self):
        cg = ClusterGraph(fork_join())
        pairs = {
            (min(cg.cluster(a).members), min(cg.cluster(b).members))
            for a, b in cg.adjacent_pairs()
        }
        assert pairs == {("A", "B"), ("A", "C"), ("B", "D"), ("C", "D")}


class TestMerging:
    def test_merge_gcd_repetitions(self):
        cg = ClusterGraph(fork_join())
        cid = cg.merge(cg.cluster_id_of("B"), cg.cluster_id_of("D"))
        assert cg.cluster(cid).repetitions == 2  # gcd(2, 6)
        assert cg.cluster(cid).members == frozenset("BD")
        assert cg.num_clusters() == 3

    def test_merge_records_hierarchy(self):
        cg = ClusterGraph(fork_join())
        b, d = cg.cluster_id_of("B"), cg.cluster_id_of("D")
        bn, dn = cg.cluster(b), cg.cluster(d)
        cid = cg.merge(b, d)
        assert cg.cluster(cid).hierarchy == (bn, dn)

    def test_merge_self_rejected(self):
        cg = ClusterGraph(fork_join())
        with pytest.raises(GraphStructureError):
            cg.merge(cg.cluster_id_of("A"), cg.cluster_id_of("A"))

    def test_cycle_detection(self):
        cg = ClusterGraph(fork_join())
        # Merging A and D would leave B (and C) both downstream of the
        # merged cluster and upstream of it: a cycle.
        assert cg.merge_would_create_cycle(
            cg.cluster_id_of("A"), cg.cluster_id_of("D")
        )
        # Merging A and B is fine (the path A->C->D doesn't return to B).
        assert not cg.merge_would_create_cycle(
            cg.cluster_id_of("A"), cg.cluster_id_of("B")
        )

    def test_acyclic_maintained_through_safe_merges(self):
        cg = ClusterGraph(fork_join())
        cg.merge(cg.cluster_id_of("A"), cg.cluster_id_of("B"))
        assert cg.is_acyclic()
        cg.merge(cg.cluster_id_of("C"), cg.cluster_id_of("D"))
        assert cg.is_acyclic()
        assert cg.num_clusters() == 2

    def test_full_merge_to_single_cluster(self):
        cg = ClusterGraph(fork_join())
        cg.merge(cg.cluster_id_of("A"), cg.cluster_id_of("B"))
        cg.merge(cg.cluster_id_of("C"), cg.cluster_id_of("D"))
        cg.merge(cg.cluster_id_of("A"), cg.cluster_id_of("C"))
        assert cg.num_clusters() == 1
        root = cg.cluster(cg.cluster_ids()[0])
        assert root.members == frozenset("ABCD")
        assert root.repetitions == 1

    def test_leaf_helpers(self):
        cg = ClusterGraph(fork_join())
        node = cg.cluster(cg.cluster_id_of("A"))
        assert node.is_leaf()
        assert node.sole_member() == "A"
        cid = cg.merge(cg.cluster_id_of("A"), cg.cluster_id_of("B"))
        merged = cg.cluster(cid)
        assert not merged.is_leaf()
        with pytest.raises(GraphStructureError):
            merged.sole_member()
