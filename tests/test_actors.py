"""Tests for the DSP actor library and the execution runtime.

The deepest integration tests in the repository: compiled shared-memory
implementations of the paper's benchmark structures process real
signals, checked against closed-form results and scipy references.
"""

import math

import pytest

from repro.exceptions import SDFError
from repro.sdf.graph import SDFGraph
from repro.actors import (
    Adder,
    CollectSink,
    DelayLine,
    DFT,
    Downsample,
    FIRFilter,
    Fork,
    Gain,
    IDFT,
    ListSource,
    Magnitude,
    MovingAverage,
    Passthrough,
    RampSource,
    SineSource,
    Subtract,
    Upsample,
    bind_actors,
    run_graph,
)
from repro.apps.filterbanks import two_sided_filterbank


class TestLibraryUnits:
    def test_gain(self):
        assert Gain(3.0)([[1.0, 2.0]]) == [[3.0, 6.0]]

    def test_adder(self):
        assert Adder()([[1.0, 2.0], [10.0, 20.0]]) == [[11.0, 22.0]]

    def test_subtract(self):
        assert Subtract()([[5.0, 5.0], [2.0, 3.0]]) == [[3.0, 2.0]]

    def test_upsample(self):
        assert Upsample(3)([[1.0, 2.0]]) == [[1.0, 0.0, 0.0, 2.0, 0.0, 0.0]]

    def test_downsample(self):
        assert Downsample(2)([[1.0, 2.0, 3.0, 4.0]]) == [[1.0, 3.0]]

    def test_delay_line(self):
        d = DelayLine(2)
        assert d([[1.0, 2.0, 3.0]]) == [[0.0, 0.0, 1.0]]
        assert d([[4.0]]) == [[2.0]]
        d.reset()
        assert d([[9.0]]) == [[0.0]]

    def test_fir_streaming_state(self):
        f = FIRFilter([1.0, 0.5])
        first = f([[1.0, 0.0]])
        second = f([[0.0, 0.0]])
        assert first == [[1.0, 0.5]]
        assert second == [[0.0, 0.0]]

    def test_fir_matches_scipy(self):
        scipy_signal = pytest.importorskip("scipy.signal")
        taps = [0.2, -0.4, 0.6, 0.1]
        signal = [math.sin(0.3 * n) for n in range(40)]
        f = FIRFilter(taps)
        mine = []
        for chunk_start in range(0, 40, 8):
            mine.extend(f([signal[chunk_start:chunk_start + 8]])[0])
        reference = scipy_signal.lfilter(taps, 1.0, signal)
        assert mine == pytest.approx(list(reference))

    def test_moving_average(self):
        m = MovingAverage(2)
        assert m([[2.0, 4.0]]) == [[1.0, 3.0]]

    def test_dft_idft_round_trip(self):
        data = [1.0, -2.0, 3.0, 0.5]
        spectrum = DFT(4)([data])[0]
        back = IDFT(4)([spectrum])[0]
        assert back == pytest.approx(data)

    def test_magnitude(self):
        out = Magnitude()([[3.0, 4.0, 0.0, 1.0]])[0]
        assert out == pytest.approx([5.0, 1.0])

    def test_sources(self):
        assert RampSource(per_firing=3)([]) == [[0.0, 1.0, 2.0]]
        src = ListSource([7.0, 8.0])
        assert src([]) == [[7.0]]
        assert src([]) == [[8.0]]
        assert src([]) == [[7.0]]  # cycles
        s = SineSource(frequency=0.25, sample_rate=1.0, per_firing=4)
        assert s([])[0] == pytest.approx([0.0, 1.0, 0.0, -1.0], abs=1e-12)

    def test_collect_sink(self):
        sink = CollectSink()
        sink([[1.0], [2.0]])
        assert sink.collected == [1.0, 2.0]
        sink.reset()
        assert sink.collected == []


class TestBindActors:
    def test_missing_behaviour(self):
        g = SDFGraph()
        g.add_actors("AB")
        g.add_edge("A", "B", 1, 1)
        with pytest.raises(SDFError):
            bind_actors(g, {"A": Passthrough()})

    def test_arity_error_names_actor(self):
        g = SDFGraph()
        g.add_actors("AB")
        g.add_edge("A", "B", 3, 1)
        bound = bind_actors(
            g, {"A": lambda inputs: [[1.0]], "B": lambda inputs: []}
        )
        with pytest.raises(SDFError, match="'A'"):
            bound["A"]([])


class TestRunGraph:
    def test_gain_chain(self):
        g = SDFGraph("amp")
        g.add_actors(["src", "amp", "snk"])
        g.add_edge("src", "amp", 1, 1)
        g.add_edge("amp", "snk", 1, 1)
        sink = CollectSink()
        outcome = run_graph(
            g,
            {"src": RampSource(), "amp": Gain(10.0), "snk": sink},
            periods=5,
        )
        assert outcome.output() == [0.0, 10.0, 20.0, 30.0, 40.0]

    def test_multirate_decimation(self):
        g = SDFGraph("decim")
        g.add_actors(["src", "dec", "snk"])
        g.add_edge("src", "dec", 1, 4)
        g.add_edge("dec", "snk", 1, 1)
        sink = CollectSink()
        run_graph(
            g,
            {"src": RampSource(), "dec": Downsample(4), "snk": sink},
            periods=3,
        )
        assert sink.collected == [0.0, 4.0, 8.0]

    def test_delayed_edge_preload(self):
        g = SDFGraph("fb")
        g.add_actors(["src", "mix", "snk"])
        g.add_edge("src", "mix", 1, 1)
        g.add_edge("src", "mix", 1, 1)  # parallel edge, delayed below
        sink = CollectSink()
        # Rebuild with a delay on the second edge.
        g2 = SDFGraph("fb")
        g2.add_actors(["src", "mix", "snk"])
        g2.add_edge("src", "mix", 1, 1)
        g2.add_edge("mix", "snk", 1, 1)
        g2.add_edge("src", "mix", 1, 1, delay=1)
        outcome = run_graph(
            g2,
            {"src": RampSource(fan_out=2), "mix": Adder(), "snk": sink},
            periods=3,
            preloads={("src", "mix", 1): [100.0]},
        )
        # mix adds the direct sample and the delayed stream:
        # firing 0: 0 + 100 (preload); firing 1: 1 + 0; firing 2: 2 + 1.
        assert sink.collected == [100.0, 1.0, 3.0]


from repro.actors import haar_behaviours as haar_filterbank_behaviours_kit


def haar_filterbank_behaviours(graph, signal):
    """Delegates to the library kit (repro.actors.filterbank_kit)."""
    return haar_filterbank_behaviours_kit(graph, signal)


class TestFilterbankReconstruction:
    """A compiled, buffer-shared QMF filterbank reconstructs its input.

    The repository's flagship integration test: the full flow — RPMC,
    SDPPO, lifetime extraction, first-fit — produces a 20-actor (depth
    2) or 44-actor (depth 3) shared-memory program, and running it with
    Haar analysis/synthesis behaviours returns the input samples
    exactly.  Any scheduling, lifetime, or allocation bug corrupts the
    signal.
    """

    @pytest.mark.parametrize("depth", [1, 2, 3])
    def test_perfect_reconstruction(self, depth):
        graph = two_sided_filterbank(depth, "12")
        block = 2 ** depth
        signal = [float(n % 7) - 3.0 for n in range(4 * block)]
        behaviours = haar_filterbank_behaviours(graph, signal)
        outcome = run_graph(graph, behaviours, periods=4)
        assert outcome.output() == pytest.approx(signal)

    def test_reconstruction_through_both_methods(self):
        graph = two_sided_filterbank(2, "12")
        signal = [math.sin(0.7 * n) for n in range(16)]
        for method in ("rpmc", "apgan"):
            behaviours = haar_filterbank_behaviours(graph, signal)
            outcome = run_graph(graph, behaviours, periods=4, method=method)
            assert outcome.output() == pytest.approx(signal), method
