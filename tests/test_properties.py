"""Cross-module property tests: the whole flow on random inputs.

These are the repository's deepest invariant checks: for arbitrary
consistent SDF graphs, every stage of the flow must agree with every
other — analytical costs with simulated costs, lifetime claims with
executed memory behaviour, allocations with their bounds.
"""

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.sdf.random_graphs import random_chain_graph, random_sdf_graph
from repro.sdf.repetitions import repetitions_vector
from repro.sdf.simulate import (
    buffer_memory_nonshared,
    max_live_tokens,
    validate_schedule,
)
from repro.scheduling.pipeline import implement
from repro.scheduling.dppo import dppo
from repro.allocation.verify import verify_allocation
from repro.codegen.vm import run_shared_memory_check

_SETTINGS = settings(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


class TestEndToEnd:
    @given(
        st.integers(min_value=2, max_value=14),
        st.integers(min_value=0, max_value=5000),
        st.sampled_from(["rpmc", "apgan", "natural"]),
    )
    @_SETTINGS
    def test_flow_invariants(self, n, seed, method):
        graph = random_sdf_graph(n, seed=seed)
        result = implement(graph, method, seed=seed, verify=False)

        # 1. Both schedules are valid SASs with the chosen lexical order.
        validate_schedule(graph, result.dppo_schedule)
        validate_schedule(graph, result.sdppo_schedule)
        assert result.sdppo_schedule.is_single_appearance()

        # 2. DPPO's cost equals its schedule's simulated buffer memory.
        assert result.dppo_cost == buffer_memory_nonshared(
            graph, result.dppo_schedule
        )

        # 3. The allocation is feasible and within its bounds.
        buffers = result.lifetimes.as_list()
        verify_allocation(buffers, result.allocation)
        assert result.allocation.total >= result.mco
        assert result.mco <= result.mcp

        # 4. Sharing never exceeds the one-buffer-per-edge cost of the
        #    same schedule.
        assert result.allocation.total <= result.lifetimes.total_size()

        # 5. The allocation survives real execution for two periods.
        run_shared_memory_check(
            graph, result.lifetimes, result.allocation, periods=2
        )

    @given(
        st.integers(min_value=2, max_value=10),
        st.integers(min_value=0, max_value=5000),
    )
    @_SETTINGS
    def test_chain_flow(self, n, seed):
        graph = random_chain_graph(n, seed=seed)
        result = implement(graph, "natural", verify=True)
        # The precise chain DP's estimate never exceeds the simulated
        # coarse-model peak of its own schedule.
        actual = max_live_tokens(graph, result.sdppo_schedule)
        assert result.sdppo_cost <= actual

    @given(
        st.integers(min_value=2, max_value=12),
        st.integers(min_value=0, max_value=5000),
    )
    @_SETTINGS
    def test_delays_preserved_through_flow(self, n, seed):
        """Graphs with initial tokens still produce working memory."""
        import random as _random

        rng = _random.Random(seed)
        graph = random_sdf_graph(n, seed=seed, rng=None)
        # Sprinkle delays on some edges (rebuild with delays).
        from repro.sdf.graph import SDFGraph

        g = SDFGraph("delayed")
        for a in graph.actors():
            g.add_actor(a.name, a.execution_time)
        for e in graph.edges():
            g.add_edge(
                e.source, e.sink, e.production, e.consumption,
                delay=rng.choice([0, 0, 0, e.consumption, 2 * e.consumption]),
                token_size=e.token_size,
            )
        result = implement(g, "natural", verify=True)
        run_shared_memory_check(g, result.lifetimes, result.allocation, periods=2)

    @given(
        st.integers(min_value=2, max_value=10),
        st.integers(min_value=0, max_value=3000),
    )
    @_SETTINGS
    def test_dppo_beats_flat(self, n, seed):
        """The optimized nesting never loses to the flat SAS (Fact 1)."""
        from repro.sdf.schedule import flat_single_appearance_schedule

        graph = random_sdf_graph(n, seed=seed)
        order = graph.topological_order()
        q = repetitions_vector(graph)
        flat_cost = buffer_memory_nonshared(
            graph, flat_single_appearance_schedule(order, q)
        )
        assert dppo(graph, order).cost <= flat_cost
