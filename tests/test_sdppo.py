"""Tests for SDPPO (shared-buffer DPPO heuristic, EQ 5)."""

import pytest

from repro.exceptions import GraphStructureError
from repro.sdf.graph import SDFGraph
from repro.sdf.random_graphs import random_sdf_graph
from repro.sdf.simulate import max_live_tokens, validate_schedule
from repro.scheduling.dppo import dppo
from repro.scheduling.sdppo import sdppo


def two_chains_graph():
    """Figure 7(a/b): two independent chains sharing no edges.

    in1 -> A -> out1 and in2 -> B -> out2 with no edge between A and B:
    factoring A and B together prevents sharing between A's input
    buffers and B's output buffers.
    """
    g = SDFGraph()
    g.add_actors(["in1", "A", "out1", "in2", "B", "out2"])
    g.add_edge("in1", "A", 2, 2)
    g.add_edge("A", "out1", 2, 2)
    g.add_edge("in2", "B", 2, 2)
    g.add_edge("B", "out2", 2, 2)
    return g


class TestBasics:
    def test_single_actor_zero(self):
        g = SDFGraph()
        g.add_actor("A")
        assert sdppo(g, ["A"]).cost == 0

    def test_two_actor_cost_is_crossing(self):
        g = SDFGraph()
        g.add_actors("AB")
        g.add_edge("A", "B", 4, 6)
        result = sdppo(g, ["A", "B"])
        assert result.cost == 12  # TNSE/gcd(3,2) = 12

    def test_shared_never_worse_than_nonshared_estimate(self):
        for seed in range(8):
            g = random_sdf_graph(10, seed=seed)
            order = g.topological_order()
            assert sdppo(g, order).cost <= dppo(g, order).cost

    def test_schedules_valid(self):
        for seed in range(8):
            g = random_sdf_graph(10, seed=seed)
            order = g.topological_order()
            result = sdppo(g, order)
            validate_schedule(g, result.schedule)
            assert result.schedule.is_single_appearance()
            assert result.schedule.lexical_order() == order

    def test_non_topological_order_rejected(self):
        g = SDFGraph()
        g.add_actors("AB")
        g.add_edge("A", "B", 1, 1)
        with pytest.raises(GraphStructureError):
            sdppo(g, ["B", "A"])


class TestFactoringHeuristic:
    """Section 5.1: factor a merge iff it has internal edges."""

    def test_independent_sides_not_factored(self):
        g = two_chains_graph()
        order = ["in1", "A", "out1", "in2", "B", "out2"]
        result = sdppo(g, order)
        # The split between the two chains crosses no edge, so the
        # top-level merge must record factored=False somewhere, and the
        # two chains' windows stay separate in the schedule.
        assert not all(result.factored.values())

    def test_crossing_merge_factored(self):
        g = SDFGraph()
        g.add_actors("AB")
        g.add_edge("A", "B", 2, 2)
        result = sdppo(g, ["A", "B"])
        assert result.factored[(0, 1)]

    def test_unfactored_schedule_still_valid(self):
        g = two_chains_graph()
        order = ["in1", "A", "out1", "in2", "B", "out2"]
        result = sdppo(g, order)
        validate_schedule(g, result.schedule)

    def test_unfactored_keeps_lifetimes_disjoint(self):
        """Not factoring lets the two chains' buffers share memory."""
        g = two_chains_graph()
        order = ["in1", "A", "out1", "in2", "B", "out2"]
        result = sdppo(g, order)
        # Ground truth: the schedule's peak live tokens should be only
        # one chain's worth (4 = input + output of one chain), not 8.
        assert max_live_tokens(g, result.schedule) <= 4


class TestAgainstGroundTruth:
    """The estimate should track the simulated coarse-model peak."""

    @pytest.mark.parametrize("seed", range(10))
    def test_estimate_close_to_simulated_peak(self, seed):
        g = random_sdf_graph(8, seed=seed)
        order = g.topological_order()
        result = sdppo(g, order)
        actual = max_live_tokens(g, result.schedule)
        # EQ 5 is a heuristic: it can under- or over-estimate, but on
        # small sparse graphs it should be within 2x of ground truth.
        assert result.cost <= 2 * actual + 1
        assert actual <= 2 * result.cost + 1
