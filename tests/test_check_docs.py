"""Tests for the documentation gate (scripts/check_docs.py).

The gate is load-bearing — CI runs it via ``make check-docs`` — so its
two checkers are pinned here on synthetic markdown: real links/commands
pass, broken links and phantom flags/subcommands are findings, and
usage placeholders / pipelines / non-repro lines are skipped rather
than false-positived.  The final test runs the gate for real over the
repo's own docs, which must be clean.
"""

import importlib.util
import os

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def _load():
    spec = importlib.util.spec_from_file_location(
        "check_docs", os.path.join(REPO, "scripts", "check_docs.py")
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


CHECK = _load()
PARSER = CHECK.build_parser()
FAKE = os.path.join(REPO, "docs", "fake.md")


def links(text):
    return list(CHECK.check_links(FAKE, text))


def commands(text):
    return list(CHECK.check_commands(FAKE, text, PARSER))


class TestLinkChecker:
    def test_resolving_link_passes(self):
        assert links("[arch](architecture.md) and [up](../README.md)") == []

    def test_broken_link_is_a_finding(self):
        found = links("see [nope](missing-chapter.md)")
        assert len(found) == 1
        assert "missing-chapter.md" in found[0]

    def test_external_and_anchor_links_are_skipped(self):
        text = (
            "[w](https://example.org/x.md) [m](mailto:a@b.c) "
            "[a](#the-budget) [ok](cli.md#repro-compile)"
        )
        assert links(text) == []

    def test_finding_carries_line_number(self):
        found = links("line one\n\n[bad](gone.md)\n")
        assert found[0].startswith("docs/fake.md:3:")


def fence(*lines):
    return "```console\n" + "\n".join(lines) + "\n```\n"


class TestCommandChecker:
    def test_real_invocations_pass(self):
        assert commands(fence(
            "$ repro compile cddat --vectorize --memory-budget 300 --check",
            "$ python -m repro check --trials 5 --inject",
            "$ repro cache stats",
        )) == []

    def test_phantom_flag_is_a_finding(self):
        found = commands(fence("$ repro compile cddat --turbo"))
        assert len(found) == 1
        assert "--turbo" in found[0] and "repro compile" in found[0]

    def test_unknown_subcommand_is_a_finding(self):
        found = commands(fence("$ repro frobnicate"))
        assert len(found) == 1
        assert "frobnicate" in found[0]

    def test_placeholders_and_pipelines_are_skipped(self):
        assert commands(fence(
            "$ repro <command> [options...]",
            "$ repro dot cddat | dot -Tpng -o cddat.png",
            "$ ls BENCH_*.json",
            "# a comment",
        )) == []

    def test_output_lines_are_not_commands(self):
        # Only `$ `-prefixed (or bare repro/python -m repro) lines are
        # parsed; captured output below a command is ignored.
        assert commands(fence(
            "$ repro compile cddat",
            "graph:      cd2dat (6 actors)",
            "shared:     257 words (mco 257, mcp 257)",
        )) == []

    def test_nested_subcommand_flags_are_resolved(self):
        assert commands(fence("$ repro cache gc --max-age-days 30")) == []
        found = commands(fence("$ repro cache gc --no-such"))
        assert len(found) == 1


class TestRepoDocsAreClean:
    def test_gate_passes_on_the_real_docs(self):
        root = CHECK.build_parser()
        for path in CHECK.doc_files():
            with open(path, encoding="utf-8") as handle:
                text = handle.read()
            assert list(CHECK.check_links(path, text)) == []
            assert list(CHECK.check_commands(path, text, root)) == []
