"""Incremental simulator vs. the straightforward reference implementation.

``repro.sdf.simulate`` records a delta-encoded token trace and computes
``max_tokens`` / ``coarse_live_intervals`` / ``max_live_tokens`` in one
streaming pass.  These tests pin it against an independent reference
that materializes the full per-firing token state (the original
implementation) on the Table 1 systems and on random graphs, so any
divergence between the fast path and the obvious semantics fails loudly.
"""

from typing import Dict, List, Optional, Tuple

import pytest

from repro.apps import table1_graph
from repro.scheduling.pipeline import implement
from repro.scheduling.vectorize import vectorize_schedule
from repro.sdf.random_graphs import random_sdf_graph
from repro.sdf.simulate import (
    coarse_live_intervals,
    max_live_tokens,
    max_tokens,
    simulate_schedule,
    validate_schedule,
)

SYSTEMS = [
    "satrec",
    "qmf12_3d",
    "16qamModem",
    "4pamxmitrec",
    "blockVox",
    "nqmf23_4d",
    "qmf23_2d",
]


# ---------------------------------------------------------------------------
# Reference implementation: full dict-per-firing trace, quadratic scans.

def _ref_fire(graph, actor, tokens):
    for e in graph.in_edges(actor):
        tokens[e.key] -= e.consumption
        assert tokens[e.key] >= 0
    for e in graph.out_edges(actor):
        tokens[e.key] += e.production


def _ref_trace(graph, schedule):
    tokens = {e.key: e.delay for e in graph.edges()}
    firings: List[str] = []
    counts = [dict(tokens)]
    for actor in schedule.firing_sequence():
        _ref_fire(graph, actor, tokens)
        firings.append(actor)
        counts.append(dict(tokens))
    return firings, counts


def _ref_max_tokens(graph, schedule):
    peaks = {e.key: e.delay for e in graph.edges()}
    tokens = {e.key: e.delay for e in graph.edges()}
    for actor in schedule.firing_sequence():
        _ref_fire(graph, actor, tokens)
        for e in graph.out_edges(actor):
            if tokens[e.key] > peaks[e.key]:
                peaks[e.key] = tokens[e.key]
    return peaks


def _ref_coarse_live_intervals(graph, schedule):
    firings, counts = _ref_trace(graph, schedule)
    edge_keys = [e.key for e in graph.edges()]
    intervals: Dict[Tuple[str, str, int], List[Tuple[int, int]]] = {
        k: [] for k in edge_keys
    }
    open_at: Dict[Tuple[str, str, int], Optional[int]] = {}
    for k in edge_keys:
        open_at[k] = 0 if counts[0][k] > 0 else None
    for t in range(1, len(counts)):
        state = counts[t]
        for k in edge_keys:
            live = state[k] > 0
            if live and open_at[k] is None:
                open_at[k] = t - 1
            elif not live and open_at[k] is not None:
                intervals[k].append((open_at[k], t))
                open_at[k] = None
    for k in edge_keys:
        if open_at[k] is not None:
            intervals[k].append((open_at[k], len(counts) - 1))
    return intervals


def _ref_max_live_tokens(graph, schedule):
    firings, counts = _ref_trace(graph, schedule)
    intervals = _ref_coarse_live_intervals(graph, schedule)
    by_key = {e.key: e for e in graph.edges()}
    events: List[Tuple[int, int]] = []
    for k, ivals in intervals.items():
        e = by_key[k]
        for s, t in ivals:
            produced = sum(
                e.production
                for step in range(s, t)
                if firings[step] == e.source
            )
            size = (counts[s][k] + produced) * e.token_size
            events.append((s, size))
            events.append((t, -size))
    events.sort(key=lambda ev: (ev[0], ev[1]))
    live = 0
    peak = 0
    for _, delta in events:
        live += delta
        peak = max(peak, live)
    return peak


# ---------------------------------------------------------------------------

def _schedules(graph):
    result = implement(graph, "apgan", verify=False)
    return [result.dppo_schedule, result.sdppo_schedule]


def _graphs():
    for name in SYSTEMS:
        yield name, table1_graph(name)
    for seed in (1, 9):
        yield f"random20_{seed}", random_sdf_graph(20, seed=seed)


@pytest.mark.parametrize("name,graph", list(_graphs()))
class TestIncrementalSimulatorEquivalence:
    def test_trace_counts_match_reference(self, name, graph):
        for schedule in _schedules(graph):
            firings, counts = _ref_trace(graph, schedule)
            trace = simulate_schedule(graph, schedule)
            assert trace.firings == firings
            assert len(trace.counts) == len(counts)
            # Random access (checkpoint + delta replay), negative
            # indexing, and sequential iteration all agree.
            for t in (0, 1, len(counts) // 2, len(counts) - 1, -1):
                assert trace.counts[t] == counts[t]
            assert list(trace.counts) == counts
            for key in trace.edge_keys:
                assert trace.peak(key) == max(c[key] for c in counts)
            assert trace.total_peak() == max(
                sum(c.values()) for c in counts
            )

    def test_max_tokens_matches_reference(self, name, graph):
        for schedule in _schedules(graph):
            assert max_tokens(graph, schedule) == _ref_max_tokens(
                graph, schedule
            )

    def test_coarse_intervals_match_reference(self, name, graph):
        for schedule in _schedules(graph):
            assert coarse_live_intervals(
                graph, schedule
            ) == _ref_coarse_live_intervals(graph, schedule)

    def test_max_live_tokens_matches_reference(self, name, graph):
        for schedule in _schedules(graph):
            assert max_live_tokens(graph, schedule) == _ref_max_live_tokens(
                graph, schedule
            )


# ---------------------------------------------------------------------------
# backend="batched": block-level closed forms vs. the same references.
#
# The batched backend earns its keep on *blocked* schedules (large
# per-leaf firing counts), so each system is checked both on its SDPPO
# schedule and on the unconstrained vectorization of it — the flat SAS
# end of the frontier, where every actor is one block.

def _blocked_schedules(graph):
    result = implement(graph, "rpmc", verify=False)
    vec = vectorize_schedule(graph, result.sdppo_schedule)
    return [result.sdppo_schedule, vec.schedule]


def _batched_graphs():
    for name in SYSTEMS:
        yield name, table1_graph(name)
    for seed in range(12):
        yield f"random15_{seed}", random_sdf_graph(15, seed=400 + seed)


@pytest.mark.parametrize("name,graph", list(_batched_graphs()))
class TestBatchedBackendEquivalence:
    def test_validate_matches_interpreter(self, name, graph):
        for schedule in _blocked_schedules(graph):
            assert validate_schedule(
                graph, schedule, backend="batched"
            ) == validate_schedule(graph, schedule, backend="interpreter")

    def test_max_tokens_matches_reference(self, name, graph):
        for schedule in _blocked_schedules(graph):
            assert max_tokens(
                graph, schedule, backend="batched"
            ) == _ref_max_tokens(graph, schedule)

    def test_coarse_intervals_match_reference(self, name, graph):
        for schedule in _blocked_schedules(graph):
            assert coarse_live_intervals(
                graph, schedule, backend="batched"
            ) == _ref_coarse_live_intervals(graph, schedule)

    def test_max_live_tokens_matches_reference(self, name, graph):
        for schedule in _blocked_schedules(graph):
            assert max_live_tokens(
                graph, schedule, backend="batched"
            ) == _ref_max_live_tokens(graph, schedule)
