"""Tests for the shared DP machinery (repro.scheduling.common)."""

import pytest

from repro.exceptions import GraphStructureError, ScheduleError
from repro.sdf.graph import SDFGraph
from repro.sdf.random_graphs import random_sdf_graph
from repro.sdf.repetitions import repetitions_vector, total_tokens_exchanged
from repro.scheduling.common import (
    ChainContext,
    SplitTable,
    build_schedule_from_splits,
)


def diamond():
    g = SDFGraph()
    g.add_actors("ABCD")
    g.add_edge("A", "B", 2, 1)
    g.add_edge("A", "C", 4, 2)
    g.add_edge("B", "D", 1, 2)
    g.add_edge("C", "D", 1, 2)
    return g


class TestConstruction:
    def test_wrong_actor_set(self):
        with pytest.raises(GraphStructureError):
            ChainContext(diamond(), ["A", "B", "C"])

    def test_non_topological_rejected(self):
        with pytest.raises(GraphStructureError):
            ChainContext(diamond(), ["B", "A", "C", "D"])

    def test_trusted_skips_check(self):
        # trusted=True lets callers that already validated skip the cost.
        ctx = ChainContext(diamond(), ["A", "B", "C", "D"], trusted=True)
        assert ctx.n == 4

    def test_window_gcd(self):
        g = diamond()
        ctx = ChainContext(g, ["A", "B", "C", "D"])
        q = repetitions_vector(g)
        assert ctx.window_gcd(0, 3) == 1
        from math import gcd
        assert ctx.window_gcd(1, 2) == gcd(q["B"], q["C"])


class TestCrossingCosts:
    def brute_crossing(self, graph, order, i, j, k):
        """Reference: direct sum over crossing edges."""
        q = repetitions_vector(graph)
        from math import gcd as _gcd
        g = 0
        for x in range(i, j + 1):
            g = _gcd(g, q[order[x]])
        position = {a: p for p, a in enumerate(order)}
        total = 0
        for e in graph.edges():
            ps, pt = position[e.source], position[e.sink]
            if i <= ps <= k < pt <= j:
                total += (
                    total_tokens_exchanged(e, q) * e.token_size // g
                    + e.delay * e.token_size
                )
        return total

    @pytest.mark.parametrize("seed", range(6))
    def test_incremental_matches_direct(self, seed):
        g = random_sdf_graph(9, seed=seed)
        order = g.topological_order()
        ctx = ChainContext(g, order)
        for i in range(ctx.n):
            for j in range(i + 1, ctx.n):
                costs = ctx.crossing_costs_for_window(i, j)
                for k in range(i, j):
                    assert costs[k - i] == ctx.crossing_cost(i, j, k)
                    assert costs[k - i] == self.brute_crossing(
                        g, order, i, j, k
                    )

    def test_has_crossing_edge(self):
        g = diamond()
        ctx = ChainContext(g, ["A", "B", "C", "D"])
        assert ctx.has_crossing_edge(0, 3, 0)   # A|BCD crosses A->B, A->C
        assert ctx.has_crossing_edge(1, 2, 1) is False  # B|C: no B->C edge


class TestScheduleReconstruction:
    def test_missing_split_rejected(self):
        g = diamond()
        ctx = ChainContext(g, ["A", "B", "C", "D"])
        with pytest.raises(ScheduleError):
            build_schedule_from_splits(
                ctx, SplitTable(split={}, factored={})
            )

    def test_unfactored_split_keeps_child_factors(self):
        g = SDFGraph()
        g.add_actors(["u", "v", "x", "y"])
        g.add_edge("u", "v", 1, 2)   # q(u)=2 q(v)=1 ... no wait
        g.add_edge("x", "y", 1, 2)
        # q: u=2, v=1, x=2, y=1 (two disconnected pairs)
        ctx = ChainContext(g, ["u", "v", "x", "y"])
        table = SplitTable(
            split={(0, 3): 1, (0, 1): 0, (2, 3): 2},
            factored={(0, 3): False, (0, 1): True, (2, 3): True},
        )
        schedule = build_schedule_from_splits(ctx, table)
        from repro.sdf.simulate import validate_schedule
        validate_schedule(g, schedule)
        # The unfactored top split must not wrap a common loop: each
        # pair keeps its own gcd-1 structure.
        assert schedule.firings_per_actor() == {"u": 2, "v": 1, "x": 2, "y": 1}
