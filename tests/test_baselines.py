"""Tests for the comparison baselines (section 11)."""

import pytest

from repro.sdf.graph import SDFGraph
from repro.sdf.bounds import min_buffer_any_schedule_edge
from repro.sdf.random_graphs import random_chain_graph, random_sdf_graph
from repro.sdf.simulate import validate_schedule
from repro.baselines.dynamic_scheduler import demand_driven_schedule
from repro.baselines.flat_sharing import flat_shared_implementation
from repro.baselines.random_search import random_search
from repro.scheduling.pipeline import implement_best
from repro.apps import table1_graph


class TestFlatSharing:
    def test_flat_schedule_is_flat(self):
        g = table1_graph("16qamModem")
        result = flat_shared_implementation(g)
        assert result.schedule.is_flat()
        validate_schedule(g, result.schedule)

    def test_shared_not_worse_than_nonshared(self):
        g = table1_graph("16qamModem")
        result = flat_shared_implementation(g)
        assert result.shared_total <= result.nonshared_total

    def test_nested_beats_flat_on_satrec(self):
        """Section 11.1.2's headline: the nested shared implementation
        beats flat-SAS sharing by a wide margin on satrec."""
        g = table1_graph("satrec")
        nested = implement_best(g)
        flat = flat_shared_implementation(g, order=nested.rpmc.order)
        assert nested.best_shared < flat.shared_total
        # The paper reports >100% worse; require at least 50% worse.
        assert flat.shared_total >= 1.5 * nested.best_shared


class TestDynamicScheduler:
    def test_firing_counts_match_repetitions(self):
        from repro.sdf.repetitions import repetitions_vector
        g = random_sdf_graph(10, seed=2)
        result = demand_driven_schedule(g)
        q = repetitions_vector(g)
        counts = {}
        for a in result.firing_sequence:
            counts[a] = counts.get(a, 0) + 1
        assert counts == q

    def test_schedule_is_valid(self):
        g = random_sdf_graph(10, seed=3)
        result = demand_driven_schedule(g)
        validate_schedule(g, result.as_looped_schedule())

    @pytest.mark.parametrize("seed", range(6))
    def test_achieves_per_edge_bound_on_chains(self, seed):
        """Section 11.1.3: the greedy data-driven scheduler attains the
        minimum buffer bound on every edge of a chain."""
        g = random_chain_graph(6, seed=seed)
        result = demand_driven_schedule(g)
        for e in g.edges():
            assert result.peaks[e.key] == min_buffer_any_schedule_edge(e), e

    def test_beats_sas_total_on_chains(self):
        """Non-SAS schedules can use less buffer than the best SAS."""
        g = SDFGraph()
        g.add_actors("AB")
        g.add_edge("A", "B", 3, 5)
        result = demand_driven_schedule(g)
        assert result.peaks[("A", "B", 0)] == 7  # 3 + 5 - 1
        # BMLB (best SAS) is 15.
        from repro.sdf.bounds import bmlb
        assert result.nonshared_total < bmlb(g)

    def test_schedule_length_is_sum_q(self):
        from repro.sdf.repetitions import repetitions_vector
        g = table1_graph("satrec")
        result = demand_driven_schedule(g)
        assert result.schedule_length == sum(repetitions_vector(g).values())

    def test_delays_respected(self):
        g = SDFGraph()
        g.add_actors("AB")
        g.add_edge("A", "B", 1, 1, delay=3)
        result = demand_driven_schedule(g)
        validate_schedule(g, result.as_looped_schedule())


class TestRandomSearch:
    def test_best_by_trial_monotone(self):
        g = random_sdf_graph(10, seed=5)
        result = random_search(g, trials=10, seed=0)
        series = result.best_by_trial
        assert all(a >= b for a, b in zip(series, series[1:]))
        assert result.best_total == series[-1]

    def test_trials_to_reach(self):
        g = random_sdf_graph(10, seed=5)
        result = random_search(g, trials=10, seed=0)
        assert result.trials_to_reach(result.best_total) <= 10
        assert result.trials_to_reach(0) is None

    def test_rejects_zero_trials(self):
        g = random_sdf_graph(5, seed=0)
        with pytest.raises(ValueError):
            random_search(g, trials=0)

    def test_heuristics_hard_to_beat(self):
        """Section 10.1's conclusion, scaled down: a handful of random
        sorts should not beat the best heuristic by much."""
        g = table1_graph("16qamModem")
        heuristic = implement_best(g).best_shared
        searched = random_search(g, trials=10, seed=1).best_total
        assert searched >= 0.7 * heuristic
