"""Property tests: ``sdf.io`` round trips and canonical hashing.

Seeded random graphs — including the check harness's delay and
token-size decorated generator — must survive
``from_json(to_json(g))`` with every semantic attribute intact, and
the canonical hash must depend on graph *content* only, never on JSON
key order.
"""

import json

import pytest

from repro.check.harness import delayed_split_chain, trial_graph
from repro.sdf.io import (
    canonical_document,
    canonical_hash,
    from_json,
    to_json,
)
from repro.sdf.random_graphs import random_sdf_graph


def reorder_keys(value):
    """Recursively reverse every dict's key order (lists untouched)."""
    if isinstance(value, dict):
        return {k: reorder_keys(value[k]) for k in reversed(list(value))}
    if isinstance(value, list):
        return [reorder_keys(v) for v in value]
    return value


def graphs_under_test():
    cases = []
    for seed in range(12):
        cases.append(trial_graph(seed))  # delays + token sizes
        cases.append(random_sdf_graph(3 + seed % 6, seed=seed))
    for seed in range(0, 60, 10):
        cases.append(delayed_split_chain(seed))  # delayed edges
    return cases


@pytest.mark.parametrize(
    "graph", graphs_under_test(), ids=lambda g: g.name
)
class TestRoundTrip:
    def test_preserves_everything(self, graph):
        again = from_json(to_json(graph))
        assert again.name == graph.name
        # Actor order and execution times.
        assert again.actor_names() == graph.actor_names()
        for actor in graph.actors():
            assert (
                again.actor(actor.name).execution_time
                == actor.execution_time
            )
        # Edge order, rates, delays, token sizes.
        ours = [
            (e.source, e.sink, e.production, e.consumption,
             e.delay, e.token_size)
            for e in graph.edges()
        ]
        theirs = [
            (e.source, e.sink, e.production, e.consumption,
             e.delay, e.token_size)
            for e in again.edges()
        ]
        assert ours == theirs

    def test_round_trip_is_idempotent(self, graph):
        once = to_json(from_json(to_json(graph)))
        assert once == to_json(graph)

    def test_hash_invariant_under_key_reordering(self, graph):
        document = to_json(graph)
        reordered = reorder_keys(document)
        assert list(reordered) == list(reversed(list(document)))
        assert canonical_hash(document) == canonical_hash(reordered)
        assert canonical_document(document) == canonical_document(reordered)

    def test_hash_invariant_under_formatting(self, graph):
        document = to_json(graph)
        pretty = json.loads(json.dumps(document, indent=4))
        assert canonical_hash(document) == canonical_hash(pretty)

    def test_hash_accepts_graph_directly(self, graph):
        assert canonical_hash(graph) == canonical_hash(to_json(graph))


class TestHashSensitivity:
    def test_semantic_change_changes_hash(self):
        graph = trial_graph(0)
        document = to_json(graph)
        base = canonical_hash(document)
        for mutation in (
            lambda d: d["edges"][0].__setitem__(
                "production", d["edges"][0]["production"] + 1
            ),
            lambda d: d["edges"][0].__setitem__(
                "delay", d["edges"][0]["delay"] + 1
            ),
            lambda d: d["edges"][0].__setitem__(
                "token_size", d["edges"][0]["token_size"] + 1
            ),
            lambda d: d["actors"][0].__setitem__("execution_time", 99),
            lambda d: d.__setitem__("name", "renamed"),
        ):
            changed = json.loads(json.dumps(document))
            mutation(changed)
            assert canonical_hash(changed) != base

    def test_actor_order_is_semantic(self):
        # Reordering the actors *list* is a different document (order
        # breaks topological-sort ties), unlike reordering object keys.
        document = to_json(trial_graph(1))
        swapped = json.loads(json.dumps(document))
        swapped["actors"] = list(reversed(swapped["actors"]))
        assert canonical_hash(swapped) != canonical_hash(document)
