"""Tests for the WIG, first-fit allocation, and clique bounds (section 9)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.exceptions import AllocationError
from repro.lifetimes.periodic import PeriodicLifetime
from repro.allocation.clique import (
    clique_weight_at,
    mcw_exact_occurrences,
    mcw_optimistic,
    mcw_pessimistic,
)
from repro.allocation.first_fit import Allocation, ffdur, ffstart, first_fit
from repro.allocation.intersection_graph import build_intersection_graph
from repro.allocation.verify import find_conflicts, verify_allocation


def solid(name, size, start, duration):
    return PeriodicLifetime(name=name, size=size, start=start, duration=duration)


class TestIntersectionGraph:
    def test_overlapping_pair_adjacent(self):
        buffers = [solid("a", 1, 0, 5), solid("b", 1, 3, 5)]
        wig = build_intersection_graph(buffers)
        assert wig.are_adjacent(0, 1)
        assert wig.num_edges() == 1

    def test_disjoint_pair_not_adjacent(self):
        buffers = [solid("a", 1, 0, 3), solid("b", 1, 3, 3)]
        wig = build_intersection_graph(buffers)
        assert not wig.are_adjacent(0, 1)

    def test_periodic_interleaving_not_adjacent(self):
        a = PeriodicLifetime("a", 1, 0, 2, periods=((4, 3),))
        b = PeriodicLifetime("b", 1, 2, 2, periods=((4, 3),))
        wig = build_intersection_graph([a, b])
        assert not wig.are_adjacent(0, 1)

    def test_degree(self):
        buffers = [solid("a", 1, 0, 10), solid("b", 1, 1, 2), solid("c", 1, 5, 2)]
        wig = build_intersection_graph(buffers)
        assert wig.degree(0) == 2
        assert wig.degree(1) == 1


class TestFirstFit:
    def test_disjoint_buffers_share_offset(self):
        buffers = [solid("a", 4, 0, 3), solid("b", 4, 3, 3)]
        alloc = first_fit(buffers)
        assert alloc.offsets["a"] == 0
        assert alloc.offsets["b"] == 0
        assert alloc.total == 4

    def test_overlapping_buffers_stack(self):
        buffers = [solid("a", 4, 0, 5), solid("b", 3, 2, 5)]
        alloc = first_fit(buffers)
        assert alloc.total == 7
        verify_allocation(buffers, alloc)

    def test_gap_filling(self):
        # a at [0,4), c at [8, 11) leave a gap [4, 8); b (size 4) fits it.
        buffers = [
            solid("a", 4, 0, 10),
            solid("c", 3, 0, 10),
            solid("b", 4, 0, 10),
        ]
        alloc = first_fit(buffers, order=[0, 1, 2])
        assert alloc.offsets == {"a": 0, "c": 4, "b": 7}
        assert alloc.total == 11

    def test_first_fit_takes_lowest_feasible(self):
        # big spans [0,8); small1 dies before small2 is born, so small2
        # reuses small1's slot above big.
        buffers = [
            solid("big", 8, 0, 10),
            solid("small1", 2, 0, 4),
            solid("small2", 2, 6, 4),
        ]
        alloc = first_fit(buffers, order=[0, 1, 2])
        assert alloc.offsets["small1"] == 8
        assert alloc.offsets["small2"] == 8
        assert alloc.total == 10

    def test_zero_size_buffer(self):
        buffers = [solid("a", 4, 0, 5)]
        zero = PeriodicLifetime("z", 0, 0, 5)
        alloc = first_fit(buffers + [zero])
        assert alloc.total == 4

    def test_duplicate_names_rejected(self):
        buffers = [solid("a", 1, 0, 2), solid("a", 1, 0, 2)]
        with pytest.raises(AllocationError):
            first_fit(buffers)

    def test_bad_order_rejected(self):
        buffers = [solid("a", 1, 0, 2)]
        with pytest.raises(AllocationError):
            first_fit(buffers, order=[0, 0])

    def test_empty_instance(self):
        alloc = first_fit([])
        assert alloc.total == 0

    def test_offset_lookup_missing(self):
        alloc = first_fit([solid("a", 1, 0, 2)])
        with pytest.raises(AllocationError):
            alloc.offset_of("zzz")


class TestOrderings:
    def test_ffdur_places_long_lived_first(self):
        buffers = [solid("short", 2, 0, 1), solid("long", 2, 0, 10)]
        alloc = ffdur(buffers)
        assert alloc.order[0] == "long"

    def test_ffstart_places_early_first(self):
        buffers = [solid("late", 2, 5, 10), solid("early", 2, 0, 10)]
        alloc = ffstart(buffers)
        assert alloc.order[0] == "early"

    def test_shared_graph_reuse(self):
        buffers = [solid("a", 2, 0, 5), solid("b", 2, 3, 5)]
        wig = build_intersection_graph(buffers)
        a1 = ffdur(buffers, graph=wig)
        a2 = ffstart(buffers, graph=wig)
        verify_allocation(buffers, a1)
        verify_allocation(buffers, a2)


class TestVerify:
    def test_detects_conflict(self):
        buffers = [solid("a", 4, 0, 5), solid("b", 4, 2, 5)]
        bad = Allocation(
            offsets={"a": 0, "b": 2}, total=6, order=["a", "b"],
            graph=build_intersection_graph(buffers),
        )
        assert find_conflicts(buffers, bad.offsets) == [("a", "b")]
        with pytest.raises(AllocationError):
            verify_allocation(buffers, bad)

    def test_rejects_total_too_small(self):
        buffers = [solid("a", 4, 0, 5)]
        bad = Allocation(
            offsets={"a": 2}, total=4, order=["a"],
            graph=build_intersection_graph(buffers),
        )
        with pytest.raises(AllocationError):
            verify_allocation(buffers, bad)

    def test_missing_offset(self):
        buffers = [solid("a", 4, 0, 5)]
        with pytest.raises(AllocationError):
            find_conflicts(buffers, {})


class TestVerifyAdversarial:
    """Hand-built infeasible allocations the verifier must refuse.

    Each case targets a specific blind spot: a plausible-looking
    ``Allocation`` that an allocator bug could emit and that a naive
    checker (trusting totals, skipping degenerate buffers) would wave
    through.
    """

    def test_understated_total_with_valid_offsets(self):
        # Offsets themselves are conflict-free; only the reported total
        # lies.  Consumers size the memory segment from `total`, so this
        # must fail even though no pair overlaps.
        buffers = [solid("a", 4, 0, 5), solid("b", 4, 5, 5)]
        bad = Allocation(
            offsets={"a": 0, "b": 4}, total=7, order=["a", "b"],
            graph=build_intersection_graph(buffers),
        )
        with pytest.raises(AllocationError, match="extends past"):
            verify_allocation(buffers, bad)

    def test_negative_offset_rejected(self):
        # A negative offset can make `offset + size <= total` hold while
        # addressing memory before the segment base.
        buffers = [solid("a", 4, 0, 5)]
        bad = Allocation(
            offsets={"a": -2}, total=4, order=["a"],
            graph=build_intersection_graph(buffers),
        )
        with pytest.raises(AllocationError, match="negative offset"):
            verify_allocation(buffers, bad)

    def test_missing_offset_second_of_pair(self):
        # 'b' appears only as the second element of the (a, b) pair; the
        # pair scan reads its offset before b's own outer iteration, so
        # the lookup must surface as AllocationError, never KeyError.
        buffers = [solid("a", 4, 0, 5), solid("b", 4, 2, 5)]
        with pytest.raises(AllocationError):
            find_conflicts(buffers, {"a": 0})

    def test_missing_offset_zero_size_buffer(self):
        # Zero-size buffers can never conflict, but an absent offset is
        # still a malformed allocation — it must not be skipped silently.
        buffers = [solid("a", 4, 0, 5), solid("z", 0, 0, 5)]
        with pytest.raises(AllocationError):
            find_conflicts(buffers, {"a": 0})

    def test_zero_size_buffers_share_address(self):
        # Two zero-size buffers at the same live address range occupy no
        # words; this is feasible and must produce no conflicts.
        buffers = [
            solid("a", 4, 0, 5),
            solid("y", 0, 0, 5),
            solid("z", 0, 0, 5),
        ]
        alloc = Allocation(
            offsets={"a": 0, "y": 2, "z": 2}, total=4, order=["a", "y", "z"],
            graph=build_intersection_graph(buffers),
        )
        assert find_conflicts(buffers, alloc.offsets) == []
        verify_allocation(buffers, alloc)


class TestCliqueBounds:
    def test_clique_weight_at(self):
        buffers = [solid("a", 3, 0, 5), solid("b", 4, 2, 5), solid("c", 5, 10, 2)]
        assert clique_weight_at(buffers, 3) == 7
        assert clique_weight_at(buffers, 11) == 5

    def test_mco_solid_equals_exact(self):
        buffers = [solid("a", 3, 0, 5), solid("b", 4, 2, 5), solid("c", 5, 4, 5)]
        assert mcw_optimistic(buffers) == 12
        assert mcw_pessimistic(buffers) == 12

    def test_figure20_style_gap(self):
        """The true MCW can occur at a non-earliest occurrence start, so
        mco can be below the exact value while mcp is above it."""
        a = PeriodicLifetime("a", 2, 0, 2, periods=((6, 2),))  # [0,2),[6,8)
        b = solid("b", 3, 5, 4)                                # [5,9)
        c = solid("c", 4, 6, 1)                                # [6,7)
        buffers = [a, b, c]
        exact = mcw_exact_occurrences(buffers)
        assert exact == 9  # at t=6: a + b + c
        assert mcw_optimistic(buffers) <= exact <= mcw_pessimistic(buffers)

    def test_mcw_bracket_property(self):
        buffers = [
            PeriodicLifetime("a", 2, 0, 2, periods=((5, 3),)),
            PeriodicLifetime("b", 3, 1, 3, periods=((5, 3),)),
            solid("c", 1, 0, 15),
        ]
        exact = mcw_exact_occurrences(buffers)
        assert mcw_optimistic(buffers) <= exact
        assert exact <= mcw_pessimistic(buffers)

    def test_exact_occurrence_limit(self):
        b = PeriodicLifetime(
            "x", 1, 0, 1, periods=((2, 3), (7, 3), (22, 3), (67, 3), (202, 3)),
        )
        with pytest.raises(ValueError):
            mcw_exact_occurrences([b], occurrence_limit=10)

    def test_empty_instances(self):
        assert mcw_optimistic([]) == 0
        assert mcw_pessimistic([]) == 0


@st.composite
def solid_instances(draw):
    n = draw(st.integers(min_value=1, max_value=12))
    buffers = []
    for i in range(n):
        buffers.append(
            solid(
                f"b{i}",
                draw(st.integers(min_value=0, max_value=8)),
                draw(st.integers(min_value=0, max_value=20)),
                draw(st.integers(min_value=1, max_value=10)),
            )
        )
    return buffers


class TestAllocationProperties:
    @given(solid_instances())
    @settings(max_examples=80, deadline=None)
    def test_first_fit_always_feasible(self, buffers):
        for alloc in (ffdur(buffers), ffstart(buffers)):
            verify_allocation(buffers, alloc)

    @given(solid_instances())
    @settings(max_examples=80, deadline=None)
    def test_allocation_at_least_mcw(self, buffers):
        """The allocation total can never beat the max clique weight."""
        mcw = mcw_pessimistic(buffers)  # exact for solid instances
        assert ffdur(buffers).total >= mcw
        assert ffstart(buffers).total >= mcw

    @given(solid_instances())
    @settings(max_examples=40, deadline=None)
    def test_allocation_at_most_sum(self, buffers):
        total = sum(b.size for b in buffers)
        assert ffdur(buffers).total <= total
