"""Tests for the compile farm: sharding, tiers, single-flight,
supervision, client retries, and cache gc under concurrency."""

import json
import multiprocessing
import os
import threading
import time
from http.server import BaseHTTPRequestHandler, HTTPServer

import pytest

from repro.apps.ptolemy_demos import cd_to_dat
from repro.scheduling.pipeline import implement
from repro.sdf.graph import SDFGraph
from repro.sdf.io import canonical_hash, to_json
from repro.serve import (
    ArtifactCache,
    CompilationReport,
    CompileServer,
    CompileService,
    ServeClientError,
    WorkerFarm,
    cache_key,
    rendezvous_shard,
)
from repro.serve import client as serve_client
from repro.serve.client import (
    BatchItemError,
    compile_batch_remote,
    compile_remote,
    get_json,
    resize_remote,
)


def small_graph(name="farm_sample"):
    g = SDFGraph(name)
    g.add_actors("ABC")
    g.add_edge("A", "B", 3, 2)
    g.add_edge("B", "C", 2, 5, delay=2)
    return g


def make_report():
    result = implement(small_graph())
    return CompilationReport.from_result(result, "farm_sample")


def farm_counter(server, name):
    """Sum a farm obs counter over all workers via /stats."""
    stats = get_json(server.url, "/stats")
    return stats["farm"]["counters"].get(name, 0)


class TestRendezvousShard:
    def test_deterministic_and_stable_across_instances(self):
        # The shard is a pure function of (digest, size): two pools of
        # the same size — e.g. a server before and after a restart —
        # must agree on every placement.
        digests = [canonical_hash(to_json(small_graph(f"g{i}")))
                   for i in range(12)]
        for size in (1, 2, 4, 8):
            first = [rendezvous_shard(d, size) for d in digests]
            again = [rendezvous_shard(d, size) for d in digests]
            assert first == again
            assert all(0 <= s < size for s in first)

    def test_all_slots_reachable(self):
        shards = {rendezvous_shard(f"{i:064x}", 4) for i in range(64)}
        assert shards == {0, 1, 2, 3}

    def test_growth_moves_few_keys(self):
        # Consistent-hashing property: going from N to N+1 workers
        # must not reshuffle the world (that would cold every cache).
        keys = [f"{i:064x}" for i in range(256)]
        before = [rendezvous_shard(k, 4) for k in keys]
        after = [rendezvous_shard(k, 5) for k in keys]
        moved = sum(1 for b, a in zip(before, after) if b != a)
        assert moved < len(keys) * 0.4  # ~1/5 expected, 0.4 is lax

    def test_farm_shard_for_matches_free_function(self):
        farm = WorkerFarm(size=4, supervise_interval=0)  # not started
        digest = canonical_hash(to_json(small_graph()))
        assert farm.shard_for(digest) == rendezvous_shard(digest, 4)

    def test_invalid_sizes_rejected(self):
        with pytest.raises(ValueError):
            rendezvous_shard("ab", 0)
        with pytest.raises(ValueError):
            WorkerFarm(size=0)
        with pytest.raises(ValueError):
            WorkerFarm(size=1, shard_by="hash")


class TestMemoryTier:
    def test_three_tiers_bit_identical(self, tmp_path):
        service = CompileService(
            cache=ArtifactCache(str(tmp_path)), memory_entries=4
        )
        doc = to_json(small_graph())
        cold, s1, t1 = service.compile_document_tiered(doc)
        warm_mem, s2, t2 = service.compile_document_tiered(doc)
        assert (s1, t1) == ("miss", "compile")
        assert (s2, t2) == ("hit", "memory")
        # A second service over the same directory has a cold memory
        # tier: first hit comes from disk, the next from memory.
        other = CompileService(
            cache=ArtifactCache(str(tmp_path)), memory_entries=4
        )
        warm_disk, s3, t3 = other.compile_document_tiered(doc)
        warm_mem2, s4, t4 = other.compile_document_tiered(doc)
        assert (s3, t3) == ("hit", "disk")
        assert (s4, t4) == ("hit", "memory")
        for report in (warm_mem, warm_disk, warm_mem2):
            assert report.canonical() == cold.canonical()
            assert report.cached

    def test_memory_lru_bounded(self, tmp_path):
        service = CompileService(
            cache=ArtifactCache(str(tmp_path)), memory_entries=2
        )
        docs = [to_json(small_graph(f"m{i}")) for i in range(3)]
        for doc in docs:
            service.compile_document_tiered(doc)
        assert len(service._memory) == 2
        # Oldest graph fell out of memory; it must come back from disk.
        _, status, tier = service.compile_document_tiered(docs[0])
        assert (status, tier) == ("hit", "disk")

    def test_lookup_misses_do_not_skew_counters(self, tmp_path):
        service = CompileService(
            cache=ArtifactCache(str(tmp_path)), memory_entries=4
        )
        doc = to_json(small_graph())
        key = cache_key(doc, {"method": "rpmc", "seed": 0,
                              "use_chain_dp": True,
                              "occurrence_cap": 64})
        assert service.lookup(key) is None
        service.compile_document_tiered(doc)
        # One logical miss happened; the probe must not double-count.
        assert service.cache.misses == 1

    def test_disabled_memory_tier_by_default(self, tmp_path):
        service = CompileService(cache=ArtifactCache(str(tmp_path)))
        assert service._memory is None
        doc = to_json(small_graph())
        service.compile_document_tiered(doc)
        _, status, tier = service.compile_document_tiered(doc)
        assert (status, tier) == ("hit", "disk")


@pytest.fixture
def farm_server(tmp_path):
    server = CompileServer(
        CompileService(cache=ArtifactCache(str(tmp_path))),
        port=0, processes=2, queue_limit=32,
        allow_faults=True, quiet=True,
    ).start()
    yield server
    server.drain(timeout=15)


class TestFarmServer:
    def test_miss_then_hit_bit_identical(self, farm_server):
        doc = to_json(cd_to_dat())
        cold, s1 = compile_remote(doc, url=farm_server.url)
        warm, s2 = compile_remote(doc, url=farm_server.url)
        assert (s1, s2) == ("miss", "hit")
        assert warm.canonical() == cold.canonical()
        assert farm_counter(farm_server, "farm.compiles") == 1

    def test_requests_land_on_their_shard(self, farm_server):
        docs = [to_json(small_graph(f"s{i}")) for i in range(4)]
        expected = [0] * farm_server.farm.size
        for doc in docs:
            shard = farm_server.farm.shard_for(canonical_hash(doc))
            expected[shard] += 2
            compile_remote(doc, url=farm_server.url)
            compile_remote(doc, url=farm_server.url)
        stats = get_json(farm_server.url, "/stats")
        observed = [w["requests"] for w in stats["farm"]["workers"]]
        assert observed == expected

    def test_single_flight_concurrent_identical_colds(self, farm_server):
        # Six identical cold requests in flight together: the leader
        # compiles (slowed by the sleep fault so the others genuinely
        # overlap), the rest receive its bytes.  Exactly one compile.
        doc = to_json(small_graph("stampede"))
        payload = {
            "graph": doc, "options": {}, "cache": True,
            "fault": "sleep:0.4",
        }
        results = []
        errors = []

        def post():
            try:
                results.append(
                    serve_client._post(
                        farm_server.url, "/compile", payload, timeout=30
                    )
                )
            except ServeClientError as exc:  # pragma: no cover
                errors.append(exc)

        threads = [threading.Thread(target=post) for _ in range(6)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert errors == []
        assert len(results) == 6
        canonicals = set()
        for response in results:
            report = CompilationReport.from_json(response["report"])
            canonicals.add(report.canonical())
        assert len(canonicals) == 1
        assert farm_counter(farm_server, "farm.compiles") == 1
        stats = get_json(farm_server.url, "/stats")["server"]
        assert stats["misses"] == 1
        assert stats["coalesced"] + stats["hits"] == 5
        assert stats["coalesced"] >= 1

    def test_worker_crash_is_one_line_503_and_recovers(self, farm_server):
        doc = to_json(small_graph("crashy"))
        payload = {
            "graph": doc, "options": {}, "cache": False,
            "fault": "worker_crash",
        }
        with pytest.raises(ServeClientError) as err:
            serve_client._post(
                farm_server.url, "/compile", payload, timeout=30
            )
        assert err.value.status == 503
        assert "\n" not in str(err.value)
        # The same worker answers normal traffic again immediately.
        report, status = compile_remote(doc, url=farm_server.url)
        assert status in ("miss", "hit")
        assert report.graph == "crashy"
        health = get_json(farm_server.url, "/healthz")
        assert health["status"] == "ok"
        assert health["farm"]["alive"] == health["farm"]["size"]
        assert health["farm"]["restarts"] >= 1

    def test_idle_crash_respawned_by_supervisor(self, farm_server):
        handle = farm_server.farm._handles[0]
        pid = handle.proc.pid
        handle.proc.kill()
        deadline = time.monotonic() + 5
        while time.monotonic() < deadline:
            if (
                handle.proc is not None
                and handle.proc.is_alive()
                and handle.proc.pid != pid
            ):
                break
            time.sleep(0.05)
        health = get_json(farm_server.url, "/healthz")
        assert health["farm"]["alive"] == health["farm"]["size"]
        assert health["farm"]["restarts"] >= 1

    def test_hung_worker_times_out_and_respawns(self, tmp_path):
        server = CompileServer(
            CompileService(cache=ArtifactCache(str(tmp_path / "c2"))),
            port=0, processes=1, queue_limit=8,
            request_timeout=0.5, allow_faults=True, quiet=True,
        ).start()
        try:
            doc = to_json(small_graph("sleepy"))
            payload = {
                "graph": doc, "options": {}, "cache": False,
                "fault": "sleep:30",
            }
            with pytest.raises(ServeClientError) as err:
                serve_client._post(server.url, "/compile", payload,
                                   timeout=30)
            assert err.value.status == 504
            # The shard healed: the killed worker's replacement serves.
            report, _ = compile_remote(doc, url=server.url, timeout=30)
            assert report.graph == "sleepy"
            assert server.farm.restarts_total() >= 1
        finally:
            server.drain(timeout=15)

    def test_mixed_load_with_crash_all_answered(self, farm_server):
        # Acceptance: killing a worker mid-load leaves the server
        # healthy with every request answered — a result or a one-line
        # 503, never a hang.
        docs = [to_json(small_graph(f"mix{i}")) for i in range(4)]
        outcomes = []

        def normal(doc):
            try:
                _, status = compile_remote(doc, url=farm_server.url,
                                           timeout=60)
                outcomes.append(("ok", status))
            except ServeClientError as exc:
                outcomes.append(("err", exc.status))

        def crash():
            payload = {
                "graph": to_json(small_graph("mixcrash")),
                "options": {}, "cache": False, "fault": "worker_crash",
            }
            try:
                serve_client._post(farm_server.url, "/compile", payload,
                                   timeout=60)
                outcomes.append(("ok", "crash-survived"))
            except ServeClientError as exc:
                outcomes.append(("err", exc.status))

        threads = [threading.Thread(target=normal, args=(d,))
                   for d in docs for _ in range(2)]
        threads.insert(3, threading.Thread(target=crash))
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=90)
        assert not any(t.is_alive() for t in threads), "a request hung"
        assert len(outcomes) == 9
        # Normal requests may be collateral 503s of the crashed worker,
        # but every single one got an answer and the pool recovered.
        assert all(
            kind == "ok" or code in (503, 504)
            for kind, code in outcomes
        )
        health = get_json(farm_server.url, "/healthz")
        assert health["farm"]["alive"] == health["farm"]["size"]

    def test_stats_reports_latency_percentiles(self, farm_server):
        doc = to_json(small_graph())
        for _ in range(3):
            compile_remote(doc, url=farm_server.url)
        latency = get_json(farm_server.url, "/stats")["latency_ms"]
        assert latency["count"] >= 3
        assert 0 < latency["p50"] <= latency["p95"] <= latency["p99"]

    def test_cache_disabled_matches_direct_pipeline(self, farm_server):
        doc = to_json(small_graph())
        report, status = compile_remote(
            doc, url=farm_server.url, use_cache=False
        )
        assert status == "disabled"
        direct = CompilationReport.from_result(
            implement(small_graph()), "farm_sample"
        )
        assert report.canonical() == direct.canonical()

    def test_bad_request_stays_400_on_farm_path(self, farm_server):
        with pytest.raises(ServeClientError) as err:
            compile_remote({"actors": "nope"}, url=farm_server.url)
        assert err.value.status == 400
        with pytest.raises(ServeClientError) as err:
            compile_remote(
                to_json(small_graph()), url=farm_server.url,
                options={"bogus": 1},
            )
        assert err.value.status == 400


def canonical_sans_key(report):
    """Canonical payload with the cache key cleared, for comparing a
    served report against a direct ``implement()`` run (which has no
    cache and therefore an empty key)."""
    payload = json.loads(report.canonical())
    payload["key"] = ""
    return payload


class TestFarmBatch:
    """/batch routed through the farm: sharding, coalescing, isolation."""

    def test_mixed_batch_bit_identical_to_serial_implement(
        self, farm_server
    ):
        graphs = [small_graph(f"fb{i}") for i in range(4)]
        docs = [to_json(g) for g in graphs] + [to_json(graphs[0])]
        cold = compile_batch_remote(docs, url=farm_server.url)
        # Four distinct colds compile; the in-batch duplicate of the
        # first is answered from the tiers.
        assert [s for _, s in cold] == ["miss"] * 4 + ["hit"]
        warm = compile_batch_remote(docs, url=farm_server.url)
        assert [s for _, s in warm] == ["hit"] * 5
        for (c, _), (w, _) in zip(cold, warm):
            assert w.canonical() == c.canonical()
        for graph, (report, _) in zip(graphs, cold):
            direct = CompilationReport.from_result(
                implement(graph), graph.name, seed=0
            )
            assert canonical_sans_key(report) == canonical_sans_key(direct)

    def test_identical_colds_in_one_batch_compile_once(self, farm_server):
        doc = to_json(small_graph("batchstampede"))
        results = compile_batch_remote([doc] * 6, url=farm_server.url)
        assert len({r.canonical() for r, _ in results}) == 1
        # Same digest => same shard => one ordered group: the first
        # item compiles, the other five are tier hits.  Exactly one
        # pipeline run for six identical cold items.
        assert results[0][1] == "miss"
        assert all(s == "hit" for _, s in results[1:])
        assert farm_counter(farm_server, "farm.compiles") == 1

    def test_poisoned_item_isolated_per_item(self, farm_server):
        good = to_json(small_graph("pois"))
        results = compile_batch_remote(
            [good, {"actors": "nope"}, good], url=farm_server.url
        )
        (r0, s0), (r1, s1), (r2, s2) = results
        assert isinstance(r1, BatchItemError)
        assert (s1, r1.code) == ("error", 400)
        assert "\n" not in r1.message
        assert s0 == "miss" and s2 == "hit"
        assert r0.canonical() == r2.canonical()

    def test_worker_crash_mid_batch_isolated_per_item(self, farm_server):
        docs = [to_json(small_graph(f"cb{i}")) for i in range(3)]
        payload = {
            "graphs": docs, "options": {}, "cache": False,
            "faults": [None, "worker_crash", None],
        }
        response = serve_client._post(
            farm_server.url, "/batch", payload, timeout=60
        )
        items = response["responses"]
        assert items[1]["status"] == "error"
        assert items[1]["code"] == 503
        assert "\n" not in items[1]["error"]
        assert items[0]["status"] == "disabled"
        assert items[2]["status"] == "disabled"
        health = get_json(farm_server.url, "/healthz")
        assert health["status"] == "ok"
        assert health["farm"]["alive"] == health["farm"]["size"]

    def test_missing_graphs_field_actionable_message(self, farm_server):
        with pytest.raises(ServeClientError) as err:
            serve_client._post(
                farm_server.url, "/batch", {"options": {}}
            )
        assert err.value.status == 400
        message = str(err.value)
        assert "missing required field 'graphs'" in message
        assert "POST /batch expects" in message
        assert "\n" not in message
        with pytest.raises(ServeClientError) as err:
            serve_client._post(
                farm_server.url, "/compile", {"options": {}}
            )
        assert "missing required field 'graph'" in str(err.value)

    def test_batch_counts_in_farm_worker_stats(self, farm_server):
        docs = [to_json(small_graph(f"wc{i}")) for i in range(3)]
        compile_batch_remote(docs, url=farm_server.url)
        assert farm_counter(farm_server, "farm.compiles") == 3
        stats = get_json(farm_server.url, "/stats")
        by_worker = [w["requests"] for w in stats["farm"]["workers"]]
        assert sum(by_worker) == 3


class TestFarmResize:
    """POST /resize: live grow/drain with counters surviving."""

    def test_grow_and_shrink_live_bit_identical(self, farm_server):
        docs = [to_json(small_graph(f"rz{i}")) for i in range(6)]
        baseline = compile_batch_remote(docs, url=farm_server.url)
        info = resize_remote(4, url=farm_server.url)
        assert (info["previous"], info["size"]) == (2, 4)
        assert (info["added"], info["removed"]) == (2, 0)
        health = get_json(farm_server.url, "/healthz")
        assert health["farm"]["alive"] == health["farm"]["size"] == 4
        grown = compile_batch_remote(docs, url=farm_server.url)
        info = resize_remote(2, url=farm_server.url)
        assert (info["size"], info["removed"]) == (2, 2)
        shrunk = compile_batch_remote(docs, url=farm_server.url)
        for (b, _), (g, _), (s, _) in zip(baseline, grown, shrunk):
            assert b.canonical() == g.canonical() == s.canonical()
        stats = get_json(farm_server.url, "/stats")
        assert stats["farm"]["retired_workers"] == 2
        # Every batch item is one farm request; the drained workers'
        # tallies were folded into the totals, so nothing went
        # backwards across the shrink.
        assert stats["farm"]["counters"]["farm.requests"] >= 18

    def test_resize_is_idempotent_for_same_size(self, farm_server):
        info = resize_remote(2, url=farm_server.url)
        assert info == {**info, "previous": 2, "size": 2,
                        "added": 0, "removed": 0}

    def test_resize_rejects_bad_requests(self, farm_server):
        with pytest.raises(ServeClientError) as err:
            resize_remote(0, url=farm_server.url)
        assert err.value.status == 400
        with pytest.raises(ServeClientError) as err:
            serve_client._post(farm_server.url, "/resize", {})
        assert err.value.status == 400
        assert "missing required field 'workers'" in str(err.value)

    def test_resize_without_farm_is_400(self, tmp_path):
        server = CompileServer(
            CompileService(cache=ArtifactCache(str(tmp_path))),
            port=0, processes=0, quiet=True,
        ).start()
        try:
            with pytest.raises(ServeClientError) as err:
                resize_remote(2, url=server.url)
            assert err.value.status == 400
            assert "no farm" in str(err.value)
        finally:
            server.drain(timeout=10)

    def test_resize_under_load_drops_nothing(self, farm_server):
        # Acceptance: resizing 2->4->3->2 while batches hammer the
        # server must drop zero in-flight requests and keep every
        # response bit-identical.
        docs = [to_json(small_graph(f"load{i}")) for i in range(4)]
        baseline = compile_batch_remote(docs, url=farm_server.url)
        expected = [r.canonical() for r, _ in baseline]
        stop = threading.Event()
        failures = []
        rounds = [0]

        def hammer():
            while not stop.is_set():
                try:
                    results = compile_batch_remote(
                        docs, url=farm_server.url, timeout=60
                    )
                except ServeClientError as exc:
                    failures.append(("transport", str(exc)))
                    continue
                rounds[0] += 1
                for (report, status), want in zip(results, expected):
                    if isinstance(report, BatchItemError):
                        failures.append(("item-error", report.message))
                    elif report.canonical() != want:
                        failures.append(("mismatch", status))

        threads = [threading.Thread(target=hammer) for _ in range(2)]
        for t in threads:
            t.start()
        try:
            for size in (4, 3, 2):
                info = resize_remote(size, url=farm_server.url,
                                     timeout=60)
                assert info["size"] == size
                time.sleep(0.15)
        finally:
            stop.set()
            for t in threads:
                t.join(timeout=60)
        assert not any(t.is_alive() for t in threads), "a batch hung"
        assert failures == []
        assert rounds[0] >= 3
        health = get_json(farm_server.url, "/healthz")
        assert health["status"] == "ok"
        assert health["farm"]["alive"] == health["farm"]["size"] == 2

    def test_farm_resize_moves_few_assignments(self):
        # Acceptance: the routing function behind /resize moves at
        # most ~1/N of the shard assignments on a grow of one.
        keys = [f"{i:064x}" for i in range(512)]
        before = [rendezvous_shard(k, 4) for k in keys]
        after = [rendezvous_shard(k, 5) for k in keys]
        moved = sum(1 for b, a in zip(before, after) if b != a)
        assert moved <= len(keys) * 0.3  # ~1/5 expected


class _StubHandler(BaseHTTPRequestHandler):
    """Scripted responses for client-retry tests."""

    script = []  # list of (code, headers, payload) consumed per request
    seen = []

    def do_POST(self):  # noqa: N802
        length = int(self.headers.get("Content-Length", "0"))
        self.rfile.read(length)
        type(self).seen.append(self.path)
        code, headers, payload = (
            self.script.pop(0) if self.script
            else (200, {}, {"status": "hit", "report": None})
        )
        body = json.dumps(payload).encode("utf-8")
        self.send_response(code)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        for name, value in headers.items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(body)

    def log_message(self, fmt, *args):
        pass


@pytest.fixture
def stub_server():
    httpd = HTTPServer(("127.0.0.1", 0), _StubHandler)
    thread = threading.Thread(target=httpd.serve_forever, daemon=True)
    thread.start()
    _StubHandler.script = []
    _StubHandler.seen = []
    yield httpd
    httpd.shutdown()
    httpd.server_close()


def stub_url(httpd):
    return f"http://127.0.0.1:{httpd.server_address[1]}"


def ok_payload():
    return {"status": "miss", "report": make_report().to_json()}


class TestClientRetries:
    def test_default_no_retry(self, stub_server):
        _StubHandler.script = [
            (429, {"Retry-After": "1"}, {"error": "queue full"}),
            (200, {}, ok_payload()),
        ]
        with pytest.raises(ServeClientError) as err:
            compile_remote(to_json(small_graph()),
                           url=stub_url(stub_server))
        assert err.value.status == 429
        assert err.value.retry_after == 1.0
        assert len(_StubHandler.seen) == 1

    def test_retry_honors_retry_after(self, stub_server, monkeypatch):
        sleeps = []
        monkeypatch.setattr(serve_client, "_sleep", sleeps.append)
        monkeypatch.setattr(serve_client, "_jitter", lambda: 1.0)
        _StubHandler.script = [
            (429, {"Retry-After": "2"}, {"error": "queue full"}),
            (503, {"Retry-After": "0.5"}, {"error": "worker respawning"}),
            (200, {}, ok_payload()),
        ]
        report, status = compile_remote(
            to_json(small_graph()), url=stub_url(stub_server), retries=3
        )
        assert status == "miss"
        assert report.graph == "farm_sample"
        assert len(_StubHandler.seen) == 3
        # jitter pinned to 1.0 => sleeps are exactly the Retry-After
        # values the server sent.
        assert sleeps == [2.0, 0.5]

    def test_backoff_without_header_is_exponential_and_capped(
        self, stub_server, monkeypatch
    ):
        sleeps = []
        monkeypatch.setattr(serve_client, "_sleep", sleeps.append)
        monkeypatch.setattr(serve_client, "_jitter", lambda: 1.0)
        _StubHandler.script = [
            (503, {}, {"error": "busy"}) for _ in range(4)
        ] + [(200, {}, ok_payload())]
        compile_remote(
            to_json(small_graph()), url=stub_url(stub_server), retries=4
        )
        assert sleeps == [0.25, 0.5, 1.0, 2.0]
        # A huge Retry-After is clamped to the cap.
        sleeps.clear()
        _StubHandler.script = [
            (429, {"Retry-After": "3600"}, {"error": "busy"}),
            (200, {}, ok_payload()),
        ]
        compile_remote(
            to_json(small_graph()), url=stub_url(stub_server), retries=1
        )
        assert sleeps == [serve_client.RETRY_CAP_S]

    def test_http_date_retry_after_honored(self, stub_server, monkeypatch):
        import email.utils

        sleeps = []
        monkeypatch.setattr(serve_client, "_sleep", sleeps.append)
        monkeypatch.setattr(serve_client, "_jitter", lambda: 1.0)
        # RFC 9110 allows the HTTP-date form; it must parse to the
        # seconds-until-then (capped), not raise inside the retry loop.
        date = email.utils.formatdate(time.time() + 4, usegmt=True)
        _StubHandler.script = [
            (429, {"Retry-After": date}, {"error": "busy"}),
            (200, {}, ok_payload()),
        ]
        report, status = compile_remote(
            to_json(small_graph()), url=stub_url(stub_server), retries=1
        )
        assert status == "miss"
        assert len(sleeps) == 1
        assert 2.5 <= sleeps[0] <= 4.5

    def test_garbage_retry_after_falls_back_to_backoff(
        self, stub_server, monkeypatch
    ):
        sleeps = []
        monkeypatch.setattr(serve_client, "_sleep", sleeps.append)
        monkeypatch.setattr(serve_client, "_jitter", lambda: 1.0)
        _StubHandler.script = [
            (429, {"Retry-After": "soonish"}, {"error": "busy"}),
            (503, {"Retry-After": "Wed, 99 Nonsense"}, {"error": "busy"}),
            (200, {}, ok_payload()),
        ]
        report, status = compile_remote(
            to_json(small_graph()), url=stub_url(stub_server), retries=2
        )
        assert status == "miss"
        # Unparseable headers never raise: each attempt fell back to
        # the exponential schedule (0.25, 0.5, ...).
        assert sleeps == [0.25, 0.5]

    def test_parse_retry_after_forms(self):
        import email.utils

        parse = serve_client._parse_retry_after
        assert parse(None) is None
        assert parse("") is None
        assert parse("2") == 2.0
        assert parse("-5") == 0.0
        assert parse("soonish") is None
        past = email.utils.formatdate(time.time() - 100, usegmt=True)
        assert parse(past) == 0.0

    def test_retries_exhausted_raises_last_error(
        self, stub_server, monkeypatch
    ):
        monkeypatch.setattr(serve_client, "_sleep", lambda s: None)
        _StubHandler.script = [
            (429, {"Retry-After": "0"}, {"error": "queue full"})
            for _ in range(3)
        ]
        with pytest.raises(ServeClientError) as err:
            compile_remote(to_json(small_graph()),
                           url=stub_url(stub_server), retries=2)
        assert err.value.status == 429
        assert len(_StubHandler.seen) == 3

    def test_non_retryable_statuses_fail_fast(
        self, stub_server, monkeypatch
    ):
        monkeypatch.setattr(
            serve_client, "_sleep",
            lambda s: pytest.fail("must not sleep on 400"),
        )
        _StubHandler.script = [(400, {}, {"error": "bad graph"})]
        with pytest.raises(ServeClientError) as err:
            compile_remote(to_json(small_graph()),
                           url=stub_url(stub_server), retries=5)
        assert err.value.status == 400
        assert len(_StubHandler.seen) == 1


def _gc_writer(task):
    """Hammer the shared cache with writes (separate process)."""
    root, worker, rounds, report_json = task
    cache = ArtifactCache(root)
    report = CompilationReport.from_json(report_json)
    for i in range(rounds):
        # Few distinct keys per worker: later rounds *rewrite* entries,
        # exercising the scan-then-replace race against gc.
        key = f"{worker:02d}{i % 4:02d}" + "ab" * 30
        cache.put(key, report)
    return cache.writes


class TestCacheGcRaces:
    def test_rewritten_entry_not_deleted(self, tmp_path):
        cache = ArtifactCache(str(tmp_path))
        report = make_report()
        key = "aa" * 32
        cache.put(key, report)
        path = cache.path_for(key)
        stale_ns = os.stat(path).st_mtime_ns - 10_000_000_000
        # A writer replaced the entry after gc's scan recorded
        # stale_ns: the removal must be skipped.
        assert cache._remove_if_unchanged(path, stale_ns) is False
        assert os.path.isfile(path)

    def test_vanished_entry_not_double_counted(self, tmp_path):
        cache = ArtifactCache(str(tmp_path))
        cache.put("bb" * 32, make_report())
        path = cache.path_for("bb" * 32)
        seen = os.stat(path).st_mtime_ns
        os.unlink(path)  # concurrent gc got there first
        assert cache._remove_if_unchanged(path, seen) is False
        assert cache.gc(max_entries=0) == 0

    def test_gc_ignores_inflight_tempfiles(self, tmp_path):
        cache = ArtifactCache(str(tmp_path))
        cache.put("cc" * 32, make_report())
        sub = os.path.dirname(cache.path_for("cc" * 32))
        tmp = os.path.join(sub, "tmpworker.tmp")
        with open(tmp, "w") as handle:
            handle.write("{half an entry")
        assert cache.gc(max_entries=0) == 1  # the entry, not the tmp
        assert os.path.isfile(tmp)

    def test_stats_tolerates_vanishing_entries(self, tmp_path, monkeypatch):
        cache = ArtifactCache(str(tmp_path))
        cache.put("dd" * 32, make_report())
        cache.put("ee" * 32, make_report())
        real_getsize = os.path.getsize

        def flaky_getsize(path):
            if "dd" in os.path.basename(path):
                raise FileNotFoundError(path)
            return real_getsize(path)

        monkeypatch.setattr(os.path, "getsize", flaky_getsize)
        stats = cache.stats()
        assert stats["entries"] == 1
        assert stats["bytes"] > 0

    def test_concurrent_writers_and_gc_stress(self, tmp_path):
        # Several processes rewrite a small key space while the parent
        # runs gc in a tight loop.  Nothing may crash, every surviving
        # entry must verify, and removals must be consistent.
        root = str(tmp_path)
        report_json = make_report().to_json()
        ctx = multiprocessing.get_context(
            "fork" if "fork" in multiprocessing.get_all_start_methods()
            else "spawn"
        )
        tasks = [(root, w, 40, report_json) for w in range(3)]
        with ctx.Pool(3) as pool:
            async_result = pool.map_async(_gc_writer, tasks)
            gc_cache = ArtifactCache(root)
            removed = 0
            while not async_result.ready():
                removed += gc_cache.gc(max_entries=3)
                gc_cache.gc(max_age_s=0.0)  # expire-everything sweep
            writes = async_result.get(timeout=60)
        assert writes == [40, 40, 40]
        # Every entry still on disk parses and verifies.
        survivor_cache = ArtifactCache(root)
        for path in survivor_cache._entries():
            key = os.path.basename(path)[:-len(".json")]
            report = survivor_cache.get(key)
            assert report is not None, f"unverifiable survivor {path}"
        assert survivor_cache.evictions == 0
        # No tempfiles were orphaned or deleted mid-replace.
        leftovers = [
            name
            for _, _, names in os.walk(root)
            for name in names
            if name.endswith(".tmp")
        ]
        assert leftovers == []
