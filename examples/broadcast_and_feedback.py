#!/usr/bin/env python3
"""Broadcast groups and feedback loops through the same pipeline.

Two scenarios beyond the paper's acyclic point-to-point model:

1. a *broadcast group* — one producer fanning the same token stream to
   several consumers through a single shared buffer, compared against
   the naive k-parallel-edges model it dominates;
2. a *feedback loop* — a cyclic graph scheduled via SCC clustering
   (`schedule_cyclic`), then carried through lifetimes, allocation and
   the shared-memory execution check exactly like an acyclic one.

Run:  python examples/broadcast_and_feedback.py
"""

from repro import SDFGraph, repetitions_vector
from repro.allocation.first_fit import first_fit
from repro.allocation.verify import verify_allocation
from repro.codegen import run_shared_memory_check
from repro.lifetimes.intervals import extract_lifetimes
from repro.scheduling.cyclic import schedule_cyclic
from repro.scheduling.pipeline import implement


def broadcast_scenario() -> None:
    # S produces one stream read by a filter A (sample by sample) and a
    # block analyzer B (two samples at a time); both feed a sink T.
    graph = SDFGraph("broadcast_demo")
    graph.add_actors("SABT")
    graph.add_broadcast("S", ["A", "B"], production=2, consumptions=[1, 2])
    graph.add_edge("A", "T", 1, 2)
    graph.add_edge("B", "T", 1, 1)
    print(f"repetitions vector: {repetitions_vector(graph)}")

    shared = implement(graph, "apgan")
    flat = implement(graph.without_broadcasts(), "apgan")
    print(f"shared schedule:      {shared.sdppo_schedule}")
    print(
        f"one shared buffer:    {shared.allocation.total} words "
        f"(group 'bc0' counted once)"
    )
    print(
        f"k parallel edges:     {flat.allocation.total} words "
        f"(each member sized separately)"
    )
    assert shared.allocation.total <= flat.allocation.total

    firings = run_shared_memory_check(
        graph, shared.lifetimes, shared.allocation, periods=2
    )
    print(f"shared-memory execution check passed ({firings} firings)\n")


def feedback_scenario() -> None:
    # B <-> C form a feedback loop whose initial tokens (delay=3) break
    # the cyclic dependency; S drives it and T drains it.
    graph = SDFGraph("feedback_demo")
    graph.add_actors("SBCT")
    graph.add_edge("S", "B", 3, 1)
    graph.add_edge("B", "C", 1, 3)
    graph.add_edge("C", "B", 3, 1, delay=3)
    graph.add_edge("C", "T", 1, 1)

    result = schedule_cyclic(graph)
    print(f"SCC quotient actors:  {result.clustered.quotient.actor_names()}")
    print(f"expanded schedule:    {result.schedule}")
    assert result.schedule.is_single_appearance()

    q = repetitions_vector(graph)
    lifetimes = extract_lifetimes(graph, result.schedule, q)
    allocation = first_fit(lifetimes.as_list())
    verify_allocation(lifetimes.as_list(), allocation)
    print(f"packed pool:          {allocation.total} words")

    firings = run_shared_memory_check(
        graph, lifetimes, allocation, periods=2
    )
    print(f"shared-memory execution check passed ({firings} firings)")


def main() -> None:
    broadcast_scenario()
    feedback_scenario()


if __name__ == "__main__":
    main()
