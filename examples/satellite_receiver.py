#!/usr/bin/env python3
"""Case study: the satellite receiver (paper sections 10–11).

Reproduces the paper's flagship comparison on the 22-actor satellite
receiver from Ritz et al.: nested single appearance schedules with
lifetime-shared buffers versus (i) one buffer per edge, (ii) sharing
restricted to flat schedules, and (iii) demand-driven dynamic
scheduling.  Also shows the published schedule from section 11.1.3
executing against our reconstruction.

Run:  python examples/satellite_receiver.py
"""

from repro.apps.satellite import SATREC_REPETITIONS, satellite_receiver
from repro.experiments.satrec_comparison import (
    format_satrec,
    run_satrec_comparison,
)
from repro.sdf import parse_schedule, repetitions_vector, validate_schedule
from repro.scheduling import implement_best

PUBLISHED_SCHEDULE = (
    "(24(11(4A)B)C G H I(11(4D)E)F K L M 10(N S J T U P))(Q R V 240W)"
)


def main() -> None:
    graph = satellite_receiver()
    q = repetitions_vector(graph)
    assert q == SATREC_REPETITIONS
    print(
        f"satellite receiver: {graph.num_actors} actors, "
        f"{graph.num_edges} edges, {sum(q.values())} firings per period"
    )

    # The paper's published APGAN schedule is valid for our
    # reconstruction — the repetitions structure matches exactly.
    published = parse_schedule(PUBLISHED_SCHEDULE)
    validate_schedule(graph, published)
    print(f"published schedule validates: {PUBLISHED_SCHEDULE}")

    # Our own flow.
    result = implement_best(graph)
    winner = (
        result.rpmc
        if result.rpmc.best_shared_total <= result.apgan.best_shared_total
        else result.apgan
    )
    print(f"\nour nested schedule: {winner.sdppo_schedule}")
    print(
        f"memory: {winner.dppo_cost} words non-shared -> "
        f"{result.best_shared} words shared "
        f"({result.improvement_percent:.1f}% improvement; "
        f"paper: 1542 -> 991, 36%)"
    )

    print()
    print(format_satrec(run_satrec_comparison(graph)))


if __name__ == "__main__":
    main()
