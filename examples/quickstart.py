#!/usr/bin/env python3
"""Quickstart: compile a small multirate SDF graph to shared memory.

Builds the three-actor sample-rate conversion chain used throughout the
paper's early sections, runs the complete flow — repetitions vector,
DPPO (non-shared baseline), SDPPO (shared model), lifetime extraction,
first-fit allocation — and prints each intermediate result, ending with
the generated C implementation.

Run:  python examples/quickstart.py
"""

from repro import SDFGraph, implement_best, repetitions_vector
from repro.codegen import emit_c, run_shared_memory_check


def main() -> None:
    # 1. Describe the dataflow graph: a 10:2 block decimator feeding a
    #    2:3 rational rate changer (prod/cons tokens per firing).
    graph = SDFGraph("quickstart")
    graph.add_actors("ABC")
    graph.add_edge("A", "B", production=10, consumption=2)
    graph.add_edge("B", "C", production=2, consumption=3)

    # 2. The repetitions vector: how often each actor fires per period.
    q = repetitions_vector(graph)
    print(f"repetitions vector: {q}")

    # 3. Run the full flow with both topological-sort heuristics.
    result = implement_best(graph)
    winner = (
        result.rpmc
        if result.rpmc.best_shared_total <= result.apgan.best_shared_total
        else result.apgan
    )

    print(f"\nnon-shared (DPPO) schedule: {winner.dppo_schedule}")
    print(f"non-shared buffer memory:   {winner.dppo_cost} words")
    print(f"\nshared (SDPPO) schedule:    {winner.sdppo_schedule}")
    print(f"shared-model estimate:      {winner.sdppo_cost} words")

    # 4. The buffer lifetimes behind the shared schedule.
    print("\nbuffer lifetimes:")
    for lifetime in winner.lifetimes.as_list():
        print(f"  {lifetime}")

    # 5. The first-fit allocation packs them into one pool.
    print(f"\nallocation ({winner.allocation.total} words total):")
    for name, offset in sorted(winner.allocation.offsets.items()):
        print(f"  {name:>8} @ offset {offset}")
    print(
        f"\nimprovement over non-shared: "
        f"{result.improvement_percent:.1f}%"
    )

    # 6. Prove it by running the schedule against the shared memory.
    firings = run_shared_memory_check(
        graph, winner.lifetimes, winner.allocation, periods=2
    )
    print(f"shared-memory execution check passed ({firings} firings)")

    # 7. Emit the inline C implementation.
    print("\n" + "=" * 60)
    print(emit_c(graph, winner.lifetimes, winner.allocation))


if __name__ == "__main__":
    main()
