#!/usr/bin/env python3
"""Visualize buffer lifetimes and the packed memory map (sections 8–9).

Renders, in ASCII, what the paper's figures 15, 17 and the first-fit
packing look like for a real schedule: the binary schedule tree, each
buffer's periodic live intervals over the schedule period, the total
occupancy profile, and the memory map produced by first-fit.  A compact
way to *see* why sharing wins: disjoint rows collapse onto the same
addresses.

Run:  python examples/memory_map_explorer.py [system]
      (system defaults to 16qamModem; any Table 1 name works)
"""

import sys

from repro.apps import TABLE1_SYSTEMS, table1_graph
from repro.lifetimes.render import (
    render_memory_map,
    render_occupancy,
    render_schedule_tree,
    render_timeline,
)
from repro.scheduling import implement


def main() -> None:
    system = sys.argv[1] if len(sys.argv) > 1 else "16qamModem"
    if system not in TABLE1_SYSTEMS:
        raise SystemExit(
            f"unknown system {system!r}; choose from {sorted(TABLE1_SYSTEMS)}"
        )
    graph = table1_graph(system)
    result = implement(graph, "rpmc")
    print(f"{system}: schedule {result.sdppo_schedule}")
    print(
        f"non-shared {result.dppo_cost}w, shared "
        f"{result.allocation.total}w "
        f"(mco {result.mco}, mcp {result.mcp})"
    )
    print()
    print(render_schedule_tree(result.lifetimes.tree))
    print()
    print(render_timeline(result.lifetimes))
    print()
    print(render_occupancy(result.lifetimes))
    print()
    print(render_memory_map(result.lifetimes, result.allocation))


if __name__ == "__main__":
    main()
