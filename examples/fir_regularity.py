#!/usr/bin/env python3
"""Regularity extraction on a fine-grained FIR filter (paper section 12).

Figures 28–29: a fine-grained FIR drawn gain-by-gain generates naive
threaded code with one block per instance, where a human would write a
loop.  Section 12 proposes (i) higher-order constructors ("Chain") so
the design stays compact, and (ii) a dynamic program that rediscovers
loops over instance-labeled firing sequences.

This example builds the FIR with the Chain constructor, schedules it,
shows the naive inline code growing linearly with the tap count, and
then compresses the firing sequence back to the loop the designer meant
— plus the shared-memory story: the FIR is homogeneous, so looping
cannot reduce buffers, but lifetime sharing keeps the pool small.

Run:  python examples/fir_regularity.py [taps]
"""

import sys

from repro.extensions.higher_order import fir_graph
from repro.extensions.regularity import compress_firing_sequence
from repro.scheduling import implement


def main() -> None:
    taps = int(sys.argv[1]) if len(sys.argv) > 1 else 8
    graph = fir_graph(taps)
    print(
        f"FIR with {taps} taps: {graph.num_actors} actors, "
        f"{graph.num_edges} edges (homogeneous)"
    )

    result = implement(graph, "natural")
    sequence = result.sdppo_schedule.firing_list()
    print(f"\nthreaded firing sequence ({len(sequence)} blocks):")
    print("  " + " ".join(sequence))

    compressed = compress_firing_sequence(sequence)
    appearances = sum(compressed.appearances().values())
    print(
        f"\nafter instance-label collapse + optimal looping "
        f"({appearances} code blocks):"
    )
    print(f"  {compressed}")

    print(
        f"\nbuffer memory: {result.dppo_cost} words unshared -> "
        f"{result.allocation.total} words shared "
        f"(edges: {graph.num_edges})"
    )
    print(
        "looping cannot shrink homogeneous buffers (section 10.2); "
        "sharing does."
    )


if __name__ == "__main__":
    main()
