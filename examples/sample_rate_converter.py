#!/usr/bin/env python3
"""CD-to-DAT sample-rate conversion end to end (paper section 11.1.3).

Builds the classic 44.1 kHz -> 48 kHz converter (147:160 in four
polyphase stages), compiles it through the full shared-memory flow, and
pushes a real sinusoid through the generated implementation: 147 input
samples become 160 output samples per period, produced by
upsample-filter-downsample stages running out of one packed memory pool.

Also reproduces the section 11.1.3 input-buffering comparison: the
nested schedule needs far less real-time input buffering than the flat
schedule because the source actor's firings are spread across the
period.

Run:  python examples/sample_rate_converter.py
"""

import math

from repro.actors import (
    CollectSink,
    Downsample,
    FIRFilter,
    ListSource,
    MovingAverage,
    Upsample,
    run_graph,
)
from repro.apps.ptolemy_demos import cd_to_dat
from repro.experiments.cddat_io import run_cddat_io
from repro.sdf import repetitions_vector


class Resampler:
    """cons M -> prod L: polyphase-style L/M stage (zero-order hold).

    A real converter interpolates with a lowpass; a zero-order hold
    keeps the example dependency-free while exercising exactly the same
    token traffic.
    """

    def __init__(self, produce: int, consume: int) -> None:
        self.produce = produce
        self.consume = consume

    def __call__(self, inputs):
        data = [v for tokens in inputs for v in tokens]
        out = [
            data[min(i * self.consume // self.produce, len(data) - 1)]
            for i in range(self.produce)
        ]
        return [out]

    def reset(self) -> None:  # stateless
        pass


def main() -> None:
    graph = cd_to_dat()
    q = repetitions_vector(graph)
    print(
        f"CD-DAT converter: {graph.num_actors} actors, repetitions {q} "
        f"(one period = {q['A']} input samples -> {q['F']} output samples)"
    )

    # 147 samples of a low-frequency sinusoid per period.  Stage
    # signatures follow the edge rates: B consumes 1 and produces 2,
    # C consumes 3 and produces 2, D consumes 7 and produces 8,
    # E consumes 7 and produces 5, F consumes 1 and produces 1.
    signal = [math.sin(2 * math.pi * 3 * n / 147.0) for n in range(147)]
    sink = CollectSink()
    # Extend the graph with an explicit sink so we can observe output.
    extended = graph.copy()
    extended.add_actor("out")
    extended.add_edge("F", "out", 1, 1)
    behaviours = {
        "A": ListSource(signal),            # 0 -> 1 source
        "B": Resampler(2, 1),               # 1 -> 2
        "C": Resampler(2, 3),               # 3 -> 2
        "D": Resampler(8, 7),               # 7 -> 8
        "E": Resampler(5, 7),               # 7 -> 5
        "F": MovingAverage(1),              # 1 -> 1 smoothing placeholder
        "out": sink,
    }

    outcome = run_graph(extended, behaviours, periods=2)
    produced = len(sink.collected)
    print(
        f"processed 2 periods: {2 * 147} samples in -> {produced} out "
        f"(expected {2 * 160})"
    )
    print(
        f"shared pool: {outcome.implementation.allocation.total} words "
        f"(non-shared {outcome.implementation.dppo_cost})"
    )

    io = run_cddat_io()
    print(
        f"\nreal-time input buffering over a {io.period_samples}-sample "
        f"period:"
    )
    print(f"  flat SAS:   {io.flat_backlog} samples")
    print(f"  nested SAS: {io.nested_backlog} samples")
    print(f"  nested schedule: {io.nested_schedule}")


if __name__ == "__main__":
    main()
