#!/usr/bin/env python3
"""Compile a QMF filterbank to a shared-memory C implementation.

The workload the paper's Table 1 centres on: a two-sided QMF analysis/
synthesis filterbank (figure 23).  This example sweeps the design space
— tree depth and rate-change variant — showing how the shared-memory
requirement scales compared to the non-shared baseline and the BMLB,
then emits the C implementation for one configuration and saves it.

Run:  python examples/filterbank_compiler.py [output.c]
"""

import sys

from repro.apps.filterbanks import two_sided_filterbank
from repro.codegen import emit_c, run_shared_memory_check
from repro.scheduling import implement_best


def sweep() -> None:
    print(
        f"{'filterbank':>12} {'actors':>7} {'non-shared':>11} "
        f"{'shared':>7} {'bmlb':>6} {'improvement':>12}"
    )
    print("-" * 62)
    for variant in ("12", "23", "235"):
        for depth in (1, 2, 3):
            graph = two_sided_filterbank(depth, variant)
            result = implement_best(graph)
            print(
                f"{graph.name:>12} {graph.num_actors:>7} "
                f"{result.best_nonshared:>11} {result.best_shared:>7} "
                f"{result.rpmc.bmlb:>6} {result.improvement_percent:>11.1f}%"
            )


def compile_one(path: str) -> None:
    graph = two_sided_filterbank(3, "12")
    result = implement_best(graph)
    winner = (
        result.rpmc
        if result.rpmc.best_shared_total <= result.apgan.best_shared_total
        else result.apgan
    )
    run_shared_memory_check(graph, winner.lifetimes, winner.allocation)
    code = emit_c(graph, winner.lifetimes, winner.allocation)
    with open(path, "w") as handle:
        handle.write(code)
    print(
        f"\nqmf12_3d compiled: {graph.num_actors} actors, "
        f"{winner.allocation.total}-word pool, schedule depth "
        f"{winner.sdppo_schedule.depth()}"
    )
    print(f"C implementation written to {path}")


def process_signal() -> None:
    """Run a real signal through the compiled shared-memory filterbank."""
    import math

    from repro.actors import haar_behaviours, run_graph

    graph = two_sided_filterbank(2, "12")
    signal = [math.sin(0.5 * n) + 0.25 * math.sin(2.3 * n) for n in range(16)]
    behaviours = haar_behaviours(graph, signal)
    outcome = run_graph(graph, behaviours, periods=4)
    output = outcome.output()
    error = max(abs(a - b) for a, b in zip(signal, output))
    print(
        f"\nsignal check: 16 samples through the compiled qmf12_2d "
        f"({outcome.implementation.allocation.total}-word pool), "
        f"max reconstruction error {error:.2e}"
    )


def main() -> None:
    sweep()
    compile_one(sys.argv[1] if len(sys.argv) > 1 else "qmf12_3d.c")
    process_signal()


if __name__ == "__main__":
    main()
