"""Service smoke test: start ``repro serve``, exercise it, drain it.

The end-to-end acceptance ritual, runnable locally (``make
serve-smoke``) and in CI:

1. start ``repro serve`` as a subprocess on an ephemeral port with a
   throwaway cache directory and ``--trace`` enabled;
2. wait for ``/healthz``;
3. submit CD-DAT twice through the real client; assert the first
   response is a cache *miss*, the second a *hit*, and that the two
   reports are bit-identical (canonical-form comparison);
4. assert ``/stats`` agrees (1 hit, 1 miss, 0 rejected);
5. send SIGTERM; assert the server drains cleanly (exit code 0) and
   leaves the trace artifact behind (``serve_trace.json`` by
   default — CI uploads it).

Exit code 0 only when every step held.

Usage::

    python scripts/serve_smoke.py [--trace serve_trace.json]
"""

from __future__ import annotations

import argparse
import os
import signal
import subprocess
import sys
import tempfile
import time

REPO_SRC = os.path.join(os.path.dirname(__file__), "..", "src")
sys.path.insert(0, REPO_SRC)

from repro.apps.ptolemy_demos import cd_to_dat  # noqa: E402
from repro.sdf.io import to_json  # noqa: E402
from repro.serve.client import (  # noqa: E402
    ServeClientError,
    compile_remote,
    get_json,
)


def fail(message: str) -> "NoReturn":  # noqa: F821 (py3.10 typing)
    print(f"serve-smoke: FAIL: {message}", file=sys.stderr)
    sys.exit(1)


def wait_healthy(url: str, deadline_s: float = 15.0) -> None:
    deadline = time.monotonic() + deadline_s
    while time.monotonic() < deadline:
        try:
            if get_json(url, "/healthz", timeout=2).get("status") == "ok":
                return
        except ServeClientError:
            pass
        time.sleep(0.1)
    fail(f"server at {url} never became healthy")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--trace", default="serve_trace.json",
                        help="trace artifact path (written on drain)")
    parser.add_argument("--timeout", type=float, default=60.0,
                        help="overall subprocess wait budget, seconds")
    args = parser.parse_args(argv)

    env = dict(os.environ)
    env["PYTHONPATH"] = (
        REPO_SRC + os.pathsep + env["PYTHONPATH"]
        if env.get("PYTHONPATH") else REPO_SRC
    )
    if os.path.exists(args.trace):
        os.unlink(args.trace)

    with tempfile.TemporaryDirectory(prefix="repro-smoke-cache-") as root:
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro", "serve", "--port", "0",
             "--quiet", "--cache-dir", root, "--trace", args.trace],
            stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
            text=True, env=env,
        )
        try:
            banner = proc.stdout.readline().strip()
            if not banner.startswith("serving on "):
                fail(f"unexpected server banner: {banner!r}")
            url = banner.split()[2]
            wait_healthy(url)

            document = to_json(cd_to_dat())
            first, first_status = compile_remote(
                document, url=url, timeout=30
            )
            if first_status != "miss":
                fail(f"first submit should miss, got {first_status!r}")
            second, second_status = compile_remote(
                document, url=url, timeout=30
            )
            if second_status != "hit":
                fail(f"second submit should hit, got {second_status!r}")
            if second.canonical() != first.canonical():
                fail("warm report is not bit-identical to the cold one")
            if not second.cached or first.cached:
                fail("cached flags inconsistent with statuses")

            stats = get_json(url, "/stats", timeout=5)
            server_stats = stats.get("server", {})
            if (server_stats.get("hits"), server_stats.get("misses"),
                    server_stats.get("rejected")) != (1, 1, 0):
                fail(f"unexpected /stats counters: {server_stats}")

            proc.send_signal(signal.SIGTERM)
            out, _ = proc.communicate(timeout=args.timeout)
            if proc.returncode != 0:
                fail(f"server exited {proc.returncode}; output:\n{out}")
            if "drained cleanly" not in out:
                fail(f"no clean-drain message; output:\n{out}")
            if not os.path.isfile(args.trace):
                fail(f"trace artifact {args.trace!r} was not written")
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait(timeout=10)

    print("serve-smoke: OK "
          f"(cold miss -> warm hit, bit-identical; trace at {args.trace})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
