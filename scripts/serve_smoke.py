"""Service smoke test: start ``repro serve``, exercise it, drain it.

The end-to-end acceptance ritual, runnable locally (``make
serve-smoke``) and in CI, in two phases:

**Threaded phase** (the pre-farm default):

1. start ``repro serve`` as a subprocess on an ephemeral port with a
   throwaway cache directory and ``--trace`` enabled;
2. wait for ``/healthz``;
3. submit CD-DAT twice through the real client; assert the first
   response is a cache *miss*, the second a *hit*, and that the two
   reports are bit-identical (canonical-form comparison);
4. assert ``/stats`` agrees (1 hit, 1 miss, 0 rejected);
5. send SIGTERM; assert the server drains cleanly (exit code 0) and
   leaves the trace artifact behind (``serve_trace.json`` by
   default — CI uploads it).

**Farm phase** (``--workers 2``):

6. start ``repro serve --workers 2`` (a two-process compile farm)
   with its own throwaway cache and trace file;
7. assert ``/healthz`` reports the farm (size 2, all alive), then
   miss -> hit with bit-identical reports, exactly as above;
8. SIGKILL one worker process (pid from ``/stats``); assert the
   supervisor respawns it — ``/healthz`` returns to 2/2 alive with a
   restart counted — and that a subsequent submit still hits,
   bit-identical;
9. ``/batch`` through the farm: a mixed cold batch then the same
   batch warm, every item bit-identical across the two; a batch with
   one malformed document yields a per-item 400 entry with the good
   items untouched;
10. live resize 2 -> 4 -> 2 via ``POST /resize`` with ``/healthz``
    green at every step and the same batch still bit-identical after
    each move;
11. SIGTERM; assert a clean drain and that the merged trace artifact
    (``serve_farm_trace.json``) contains worker-side request spans.

Exit code 0 only when every step held.

Usage::

    python scripts/serve_smoke.py [--trace serve_trace.json]
                                  [--farm-trace serve_farm_trace.json]
"""

from __future__ import annotations

import argparse
import os
import signal
import subprocess
import sys
import tempfile
import time

REPO_SRC = os.path.join(os.path.dirname(__file__), "..", "src")
sys.path.insert(0, REPO_SRC)

from repro.apps.ptolemy_demos import cd_to_dat  # noqa: E402
from repro.sdf.io import to_json  # noqa: E402
from repro.sdf.random_graphs import random_sdf_graph  # noqa: E402
from repro.serve.client import (  # noqa: E402
    BatchItemError,
    ServeClientError,
    compile_batch_remote,
    compile_remote,
    get_json,
    resize_remote,
)


def fail(message: str) -> "NoReturn":  # noqa: F821 (py3.10 typing)
    print(f"serve-smoke: FAIL: {message}", file=sys.stderr)
    sys.exit(1)


def wait_healthy(url: str, deadline_s: float = 15.0) -> None:
    deadline = time.monotonic() + deadline_s
    while time.monotonic() < deadline:
        try:
            if get_json(url, "/healthz", timeout=2).get("status") == "ok":
                return
        except ServeClientError:
            pass
        time.sleep(0.1)
    fail(f"server at {url} never became healthy")


def launch(extra_args, trace, env):
    """Start one ``repro serve`` subprocess; returns (proc, url)."""
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--port", "0",
         "--quiet", "--trace", trace, *extra_args],
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
        text=True, env=env,
    )
    banner = proc.stdout.readline().strip()
    if not banner.startswith("serving on "):
        proc.kill()
        fail(f"unexpected server banner: {banner!r}")
    url = banner.split()[2]
    wait_healthy(url)
    return proc, url


def submit_twice(url):
    """CD-DAT miss then hit; returns the (bit-identical) warm report."""
    document = to_json(cd_to_dat())
    first, first_status = compile_remote(document, url=url, timeout=30)
    if first_status != "miss":
        fail(f"first submit should miss, got {first_status!r}")
    second, second_status = compile_remote(document, url=url, timeout=30)
    if second_status != "hit":
        fail(f"second submit should hit, got {second_status!r}")
    if second.canonical() != first.canonical():
        fail("warm report is not bit-identical to the cold one")
    if not second.cached or first.cached:
        fail("cached flags inconsistent with statuses")
    return second


def terminate_cleanly(proc, trace, timeout):
    """SIGTERM; assert exit 0, a clean-drain message, and the trace."""
    proc.send_signal(signal.SIGTERM)
    out, _ = proc.communicate(timeout=timeout)
    if proc.returncode != 0:
        fail(f"server exited {proc.returncode}; output:\n{out}")
    if "drained cleanly" not in out:
        fail(f"no clean-drain message; output:\n{out}")
    if not os.path.isfile(trace):
        fail(f"trace artifact {trace!r} was not written")


def threaded_phase(args, env) -> None:
    with tempfile.TemporaryDirectory(prefix="repro-smoke-cache-") as root:
        proc, url = launch(["--cache-dir", root], args.trace, env)
        try:
            submit_twice(url)
            stats = get_json(url, "/stats", timeout=5)
            server_stats = stats.get("server", {})
            if (server_stats.get("hits"), server_stats.get("misses"),
                    server_stats.get("rejected")) != (1, 1, 0):
                fail(f"unexpected /stats counters: {server_stats}")
            terminate_cleanly(proc, args.trace, args.timeout)
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait(timeout=10)
    print("serve-smoke: threaded phase OK "
          f"(cold miss -> warm hit, bit-identical; trace at {args.trace})")


def batch_docs():
    """Three distinct documents so the batch spans shards."""
    return [
        to_json(cd_to_dat()),
        to_json(random_sdf_graph(12, seed=71)),
        to_json(random_sdf_graph(12, seed=72)),
    ]


def batch_canonicals(url, docs):
    """One ``/batch`` POST; fail on any error item, return canonicals."""
    results = compile_batch_remote(docs, url=url, timeout=30)
    for index, (report, status) in enumerate(results):
        if isinstance(report, BatchItemError):
            fail(f"batch item {index} errored: "
                 f"{report.code}: {report.message}")
        if status not in ("miss", "hit"):
            fail(f"batch item {index} has status {status!r}")
    return [report.canonical() for report, _ in results]


def farm_batch_steps(url) -> list:
    """Steps 9: batch miss -> hit bit-identity + per-item isolation."""
    docs = batch_docs()
    cold = batch_canonicals(url, docs)
    warm = batch_canonicals(url, docs)
    if warm != cold:
        fail("warm /batch is not bit-identical to the cold one")

    poisoned = [docs[0], {"actors": "not-a-graph"}, docs[1]]
    results = compile_batch_remote(poisoned, url=url, timeout=30)
    bad_report, bad_status = results[1]
    if not isinstance(bad_report, BatchItemError) or bad_status != "error":
        fail(f"poisoned batch item not isolated: got {bad_status!r}")
    if bad_report.code != 400:
        fail(f"poisoned item should be a per-item 400, "
             f"got {bad_report.code}")
    for index in (0, 2):
        report, status = results[index]
        if isinstance(report, BatchItemError) or status != "hit":
            fail(f"good item {index} was poisoned by its neighbour: "
                 f"{status!r}")
    health = get_json(url, "/healthz", timeout=5)
    if health.get("status") != "ok":
        fail(f"server left 'ok' after poisoned batch: {health}")
    return cold


def resize_steps(url, expected) -> None:
    """Step 10: live resize 2 -> 4 -> 2, /healthz green throughout."""
    docs = batch_docs()
    for size in (4, 2):
        info = resize_remote(size, url=url, timeout=30)
        if info.get("size") != size:
            fail(f"resize to {size} reported {info}")
        health = get_json(url, "/healthz", timeout=5)
        farm = health.get("farm", {})
        if health.get("status") != "ok" or (
                farm.get("alive"), farm.get("size")) != (size, size):
            fail(f"farm not {size}/{size} alive after resize: {health}")
        if batch_canonicals(url, docs) != expected:
            fail(f"batch not bit-identical after resize to {size}")


def farm_phase(args, env) -> None:
    with tempfile.TemporaryDirectory(prefix="repro-smoke-farm-") as root:
        proc, url = launch(
            ["--cache-dir", root, "--workers", "2"],
            args.farm_trace, env,
        )
        try:
            farm = get_json(url, "/healthz", timeout=5).get("farm")
            if not farm or (farm.get("size"), farm.get("alive")) != (2, 2):
                fail(f"farm not reported 2/2 alive on /healthz: {farm}")
            warm = submit_twice(url)

            # Kill one worker; the supervisor must respawn it without
            # the server ever leaving "ok".
            rows = get_json(url, "/stats", timeout=5)["farm"]["workers"]
            pids = [r["pid"] for r in rows if r.get("alive") and "pid" in r]
            if not pids:
                fail(f"no live worker pids in /stats farm rows: {rows}")
            os.kill(pids[0], signal.SIGKILL)
            deadline = time.monotonic() + 15.0
            while True:
                health = get_json(url, "/healthz", timeout=5)
                if health.get("status") != "ok":
                    fail(f"server left 'ok' after worker kill: {health}")
                farm = health.get("farm", {})
                if farm.get("alive") == 2 and farm.get("restarts", 0) >= 1:
                    break
                if time.monotonic() > deadline:
                    fail(f"worker never respawned: {farm}")
                time.sleep(0.1)

            document = to_json(cd_to_dat())
            after, after_status = compile_remote(
                document, url=url, timeout=30
            )
            if after_status != "hit":
                fail(f"post-respawn submit should hit, got {after_status!r}")
            if after.canonical() != warm.canonical():
                fail("post-respawn report is not bit-identical")

            expected = farm_batch_steps(url)
            resize_steps(url, expected)

            terminate_cleanly(proc, args.farm_trace, args.timeout)
            with open(args.farm_trace, encoding="utf-8") as handle:
                trace_text = handle.read()
            if "serve.request" not in trace_text:
                fail("farm trace has no serve.request spans "
                     "(worker trees not merged?)")
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait(timeout=10)
    print("serve-smoke: farm phase OK "
          "(2 workers, kill -> respawn -> healthy; farm batch "
          "miss -> hit bit-identical, poisoned item isolated, live "
          "resize 2 -> 4 -> 2 green; "
          f"merged trace at {args.farm_trace})")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--trace", default="serve_trace.json",
                        help="threaded-phase trace artifact path")
    parser.add_argument("--farm-trace", default="serve_farm_trace.json",
                        help="farm-phase merged trace artifact path")
    parser.add_argument("--timeout", type=float, default=60.0,
                        help="per-subprocess wait budget, seconds")
    args = parser.parse_args(argv)

    env = dict(os.environ)
    env["PYTHONPATH"] = (
        REPO_SRC + os.pathsep + env["PYTHONPATH"]
        if env.get("PYTHONPATH") else REPO_SRC
    )
    for trace in (args.trace, args.farm_trace):
        if os.path.exists(trace):
            os.unlink(trace)

    threaded_phase(args, env)
    farm_phase(args, env)
    print("serve-smoke: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
