#!/usr/bin/env python
"""Documentation gate: links must resolve, commands must exist.

Two mechanical checks over ``README.md`` and ``docs/*.md`` (run as
``make check-docs``; CI fails the build on any finding):

* **Links** — every intra-repo markdown link target (``[text](path)``
  with a relative path, anchors stripped) must name a file or
  directory that exists.  External ``http(s)``/``mailto`` targets and
  pure-anchor links are skipped.
* **Commands** — every ``repro ...`` / ``python -m repro ...``
  invocation inside a fenced ```` ```console ```` or ```` ```bash ````
  block is checked against the *real* CLI by introspecting
  ``repro.cli.build_parser()``: the subcommand (nested ones like
  ``cache gc`` included) must exist, and every ``--flag`` token must
  be an option that subcommand actually accepts.  A doc that invents a
  flag — or keeps one that was renamed — fails here rather than
  misleading a reader.

Placeholder invocations (any token containing ``<``, ``[``, or ``...``,
e.g. ``repro <command> [options...]``) are skipped; shell pipelines
are checked up to the first operator (``|``, ``&&``, ``>``, ...).

Exit status: 0 when clean, 1 with one line per finding otherwise.
"""

from __future__ import annotations

import argparse
import glob
import os
import re
import shlex
import sys

REPO = os.path.abspath(os.path.join(os.path.dirname(__file__), ".."))
sys.path.insert(0, os.path.join(REPO, "src"))

from repro.cli import build_parser  # noqa: E402

LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
FENCE_RE = re.compile(r"```(console|bash)\n(.*?)```", re.S)
SHELL_OPERATORS = {"|", "||", "&&", "&", ";", ">", ">>", "<", "2>"}


def doc_files():
    files = [os.path.join(REPO, "README.md")]
    files.extend(sorted(glob.glob(os.path.join(REPO, "docs", "*.md"))))
    return files


def rel(path: str) -> str:
    return os.path.relpath(path, REPO)


# ----------------------------------------------------------------------
# links
# ----------------------------------------------------------------------
def check_links(path: str, text: str):
    """Yield findings for intra-repo link targets that do not exist."""
    base = os.path.dirname(path)
    for match in LINK_RE.finditer(text):
        target = match.group(1)
        if target.startswith(("http://", "https://", "mailto:")):
            continue
        target = target.split("#", 1)[0]
        if not target:  # pure anchor, e.g. (#section)
            continue
        resolved = os.path.normpath(os.path.join(base, target))
        if not os.path.exists(resolved):
            line = text.count("\n", 0, match.start()) + 1
            yield (
                f"{rel(path)}:{line}: broken link "
                f"{match.group(1)!r} ({rel(resolved)} does not exist)"
            )


# ----------------------------------------------------------------------
# commands
# ----------------------------------------------------------------------
def subparsers_of(parser: argparse.ArgumentParser):
    for action in parser._actions:
        if isinstance(action, argparse._SubParsersAction):
            return dict(action.choices)
    return {}


def option_strings_of(parser: argparse.ArgumentParser):
    options = set()
    for action in parser._actions:
        options.update(action.option_strings)
    return options


def iter_doc_commands(text: str):
    """Yield (line_number, argv-after-'repro') for each documented call."""
    for fence in FENCE_RE.finditer(text):
        body = fence.group(2)
        body_line = text.count("\n", 0, fence.start(2)) + 1
        for offset, raw in enumerate(body.splitlines()):
            line = raw.strip()
            if line.startswith("$ "):
                line = line[2:]
            if line.startswith("#") or not line:
                continue
            try:
                tokens = shlex.split(line, comments=True)
            except ValueError:
                continue
            if tokens[:3] == ["python", "-m", "repro"]:
                argv = tokens[3:]
            elif tokens and tokens[0] == "repro":
                argv = tokens[1:]
            else:
                continue
            cut = [
                i for i, t in enumerate(argv) if t in SHELL_OPERATORS
            ]
            if cut:
                argv = argv[: cut[0]]
            if any("<" in t or "[" in t or "..." in t for t in argv):
                continue  # usage placeholder, not a real invocation
            if argv:
                yield body_line + offset, argv


def check_commands(path: str, text: str, root: argparse.ArgumentParser):
    """Yield findings for documented invocations the CLI would reject."""
    top = subparsers_of(root)
    for line, argv in iter_doc_commands(text):
        where = f"{rel(path)}:{line}"
        name, rest = argv[0], argv[1:]
        if name not in top:
            yield f"{where}: unknown subcommand 'repro {name}'"
            continue
        parser = top[name]
        nested = subparsers_of(parser)
        command = name
        if nested and rest and rest[0] in nested:
            command = f"{name} {rest[0]}"
            parser, rest = nested[rest[0]], rest[1:]
        options = option_strings_of(parser) | option_strings_of(root)
        for token in rest:
            if not token.startswith("--"):
                continue
            flag = token.split("=", 1)[0]
            if flag not in options:
                yield (
                    f"{where}: 'repro {command}' has no {flag!r} flag "
                    f"(documented invocation would fail to parse)"
                )


def main() -> int:
    root = build_parser()
    findings = []
    checked = 0
    for path in doc_files():
        with open(path, encoding="utf-8") as handle:
            text = handle.read()
        findings.extend(check_links(path, text))
        findings.extend(check_commands(path, text, root))
        checked += 1
    for finding in findings:
        print(finding)
    if findings:
        print(f"check-docs: {len(findings)} finding(s) in {checked} file(s)")
        return 1
    print(f"check-docs: OK ({checked} files, links and commands verified)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
