/* Generated shared-memory implementation of 'qmf12_3d'.
 * Schedule: (2(2(2src pre0)lo0 hi0)(2pre0L)lo0L hi0L)(2pre0LL)lo0LL hi0LL ulo0LL uhi0LL(2add0LL)(2pre0LH)lo0LH hi0LH(2ulo0L)ulo0LH uhi0LH(2add0LH)(2uhi0L(2add0L ulo0))(2(2pre0H)lo0H hi0H)(2pre0HL)lo0HL hi0HL ulo0HL uhi0HL(2add0HL)(2pre0HH)lo0HH hi0HH ulo0HH uhi0HH(2add0HH)(2ulo0H uhi0H(2add0H)(2uhi0(2add0 snk)))
 * Pool size: 21 words.
 */

#include <stddef.h>

typedef int token_t;

static token_t memory[21];

#define BUF_SRC_PRE0 (memory + 14)  /* 1 words, lifetime src->pre0: size=1 start=0 dur=2 periods=(2x2, 6x2, 15x2) */
#define BUF_PRE0_LO0 (memory + 12)  /* 2 words, lifetime pre0->lo0: size=2 start=1 dur=4 periods=(6x2, 15x2) */
#define BUF_PRE0_HI0 (memory + 10)  /* 2 words, lifetime pre0->hi0: size=2 start=1 dur=5 periods=(6x2, 15x2) */
#define BUF_LO0_PRE0L (memory + 8)  /* 2 words, lifetime lo0->pre0L: size=2 start=4 dur=9 periods=(15x2) */
#define BUF_PRE0L_LO0L (memory + 12)  /* 2 words, lifetime pre0L->lo0L: size=2 start=12 dur=2 periods=(15x2) */
#define BUF_PRE0L_HI0L (memory + 10)  /* 2 words, lifetime pre0L->hi0L: size=2 start=12 dur=3 periods=(15x2) */
#define BUF_LO0L_PRE0LL (memory + 6)  /* 2 words, lifetime lo0L->pre0LL: size=2 [13, 31) */
#define BUF_PRE0LL_LO0LL (memory + 10)  /* 2 words, lifetime pre0LL->lo0LL: size=2 [30, 32) */
#define BUF_PRE0LL_HI0LL (memory + 8)  /* 2 words, lifetime pre0LL->hi0LL: size=2 [30, 33) */
#define BUF_LO0LL_ULO0LL (memory + 6)  /* 1 words, lifetime lo0LL->ulo0LL: size=1 [31, 34) */
#define BUF_HI0LL_UHI0LL (memory + 7)  /* 1 words, lifetime hi0LL->uhi0LL: size=1 [32, 35) */
#define BUF_ULO0LL_ADD0LL (memory + 8)  /* 2 words, lifetime ulo0LL->add0LL: size=2 [33, 36) */
#define BUF_UHI0LL_ADD0LL (memory + 10)  /* 2 words, lifetime uhi0LL->add0LL: size=2 [34, 36) */
#define BUF_HI0L_PRE0LH (memory + 4)  /* 2 words, lifetime hi0L->pre0LH: size=2 [14, 37) */
#define BUF_PRE0LH_LO0LH (memory + 10)  /* 2 words, lifetime pre0LH->lo0LH: size=2 [36, 38) */
#define BUF_PRE0LH_HI0LH (memory + 8)  /* 2 words, lifetime pre0LH->hi0LH: size=2 [36, 39) */
#define BUF_LO0LH_ULO0LH (memory + 4)  /* 1 words, lifetime lo0LH->ulo0LH: size=1 [37, 41) */
#define BUF_HI0LH_UHI0LH (memory + 5)  /* 1 words, lifetime hi0LH->uhi0LH: size=1 [38, 42) */
#define BUF_ULO0LH_ADD0LH (memory + 6)  /* 2 words, lifetime ulo0LH->add0LH: size=2 [40, 43) */
#define BUF_UHI0LH_ADD0LH (memory + 8)  /* 2 words, lifetime uhi0LH->add0LH: size=2 [41, 43) */
#define BUF_ADD0LL_ULO0L (memory + 6)  /* 2 words, lifetime add0LL->ulo0L: size=2 [35, 40) */
#define BUF_ADD0LH_UHI0L (memory + 16)  /* 2 words, lifetime add0LH->uhi0L: size=2 [42, 49) */
#define BUF_ULO0L_ADD0L (memory + 12)  /* 4 words, lifetime ulo0L->add0L: size=4 [39, 52) */
#define BUF_UHI0L_ADD0L (memory + 18)  /* 2 words, lifetime uhi0L->add0L: size=2 start=43 dur=4 periods=(5x2) */
#define BUF_HI0_PRE0H (memory + 0)  /* 4 words, lifetime hi0->pre0H: size=4 [5, 57) */
#define BUF_PRE0H_LO0H (memory + 18)  /* 2 words, lifetime pre0H->lo0H: size=2 start=53 dur=2 periods=(3x2) */
#define BUF_PRE0H_HI0H (memory + 16)  /* 2 words, lifetime pre0H->hi0H: size=2 start=53 dur=3 periods=(3x2) */
#define BUF_LO0H_PRE0HL (memory + 14)  /* 2 words, lifetime lo0H->pre0HL: size=2 [54, 60) */
#define BUF_PRE0HL_LO0HL (memory + 2)  /* 2 words, lifetime pre0HL->lo0HL: size=2 [59, 61) */
#define BUF_PRE0HL_HI0HL (memory + 0)  /* 2 words, lifetime pre0HL->hi0HL: size=2 [59, 62) */
#define BUF_LO0HL_ULO0HL (memory + 14)  /* 1 words, lifetime lo0HL->ulo0HL: size=1 [60, 63) */
#define BUF_HI0HL_UHI0HL (memory + 15)  /* 1 words, lifetime hi0HL->uhi0HL: size=1 [61, 64) */
#define BUF_ULO0HL_ADD0HL (memory + 2)  /* 2 words, lifetime ulo0HL->add0HL: size=2 [62, 65) */
#define BUF_UHI0HL_ADD0HL (memory + 16)  /* 2 words, lifetime uhi0HL->add0HL: size=2 [63, 65) */
#define BUF_HI0H_PRE0HH (memory + 12)  /* 2 words, lifetime hi0H->pre0HH: size=2 [55, 66) */
#define BUF_PRE0HH_LO0HH (memory + 15)  /* 2 words, lifetime pre0HH->lo0HH: size=2 [65, 67) */
#define BUF_PRE0HH_HI0HH (memory + 2)  /* 2 words, lifetime pre0HH->hi0HH: size=2 [65, 68) */
#define BUF_LO0HH_ULO0HH (memory + 14)  /* 1 words, lifetime lo0HH->ulo0HH: size=1 [66, 69) */
#define BUF_HI0HH_UHI0HH (memory + 15)  /* 1 words, lifetime hi0HH->uhi0HH: size=1 [67, 70) */
#define BUF_ULO0HH_ADD0HH (memory + 12)  /* 2 words, lifetime ulo0HH->add0HH: size=2 [68, 71) */
#define BUF_UHI0HH_ADD0HH (memory + 16)  /* 2 words, lifetime uhi0HH->add0HH: size=2 [69, 71) */
#define BUF_ADD0HL_ULO0H (memory + 0)  /* 2 words, lifetime add0HL->ulo0H: size=2 [64, 85) */
#define BUF_ADD0HH_UHI0H (memory + 2)  /* 2 words, lifetime add0HH->uhi0H: size=2 [70, 86) */
#define BUF_ULO0H_ADD0H (memory + 14)  /* 2 words, lifetime ulo0H->add0H: size=2 start=71 dur=3 periods=(13x2) */
#define BUF_UHI0H_ADD0H (memory + 16)  /* 2 words, lifetime uhi0H->add0H: size=2 start=72 dur=2 periods=(13x2) */
#define BUF_ADD0L_ULO0 (memory + 20)  /* 1 words, lifetime add0L->ulo0: size=1 start=44 dur=2 periods=(2x2, 5x2) */
#define BUF_ADD0H_UHI0 (memory + 12)  /* 2 words, lifetime add0H->uhi0: size=2 start=73 dur=7 periods=(13x2) */
#define BUF_ULO0_ADD0 (memory + 4)  /* 8 words, lifetime ulo0->add0: size=8 [45, 96) */
#define BUF_UHI0_ADD0 (memory + 14)  /* 2 words, lifetime uhi0->add0: size=2 start=74 dur=4 periods=(5x2, 13x2) */
#define BUF_ADD0_SNK (memory + 16)  /* 1 words, lifetime add0->snk: size=1 start=75 dur=2 periods=(2x2, 5x2, 13x2) */

static size_t wr_src_pre0 = 0;
static size_t rd_src_pre0 = 0;
static size_t wr_pre0_lo0 = 0;
static size_t rd_pre0_lo0 = 0;
static size_t wr_pre0_hi0 = 0;
static size_t rd_pre0_hi0 = 0;
static size_t wr_lo0_pre0L = 0;
static size_t rd_lo0_pre0L = 0;
static size_t wr_pre0L_lo0L = 0;
static size_t rd_pre0L_lo0L = 0;
static size_t wr_pre0L_hi0L = 0;
static size_t rd_pre0L_hi0L = 0;
static size_t wr_lo0L_pre0LL = 0;
static size_t rd_lo0L_pre0LL = 0;
static size_t wr_pre0LL_lo0LL = 0;
static size_t rd_pre0LL_lo0LL = 0;
static size_t wr_pre0LL_hi0LL = 0;
static size_t rd_pre0LL_hi0LL = 0;
static size_t wr_lo0LL_ulo0LL = 0;
static size_t rd_lo0LL_ulo0LL = 0;
static size_t wr_hi0LL_uhi0LL = 0;
static size_t rd_hi0LL_uhi0LL = 0;
static size_t wr_ulo0LL_add0LL = 0;
static size_t rd_ulo0LL_add0LL = 0;
static size_t wr_uhi0LL_add0LL = 0;
static size_t rd_uhi0LL_add0LL = 0;
static size_t wr_hi0L_pre0LH = 0;
static size_t rd_hi0L_pre0LH = 0;
static size_t wr_pre0LH_lo0LH = 0;
static size_t rd_pre0LH_lo0LH = 0;
static size_t wr_pre0LH_hi0LH = 0;
static size_t rd_pre0LH_hi0LH = 0;
static size_t wr_lo0LH_ulo0LH = 0;
static size_t rd_lo0LH_ulo0LH = 0;
static size_t wr_hi0LH_uhi0LH = 0;
static size_t rd_hi0LH_uhi0LH = 0;
static size_t wr_ulo0LH_add0LH = 0;
static size_t rd_ulo0LH_add0LH = 0;
static size_t wr_uhi0LH_add0LH = 0;
static size_t rd_uhi0LH_add0LH = 0;
static size_t wr_add0LL_ulo0L = 0;
static size_t rd_add0LL_ulo0L = 0;
static size_t wr_add0LH_uhi0L = 0;
static size_t rd_add0LH_uhi0L = 0;
static size_t wr_ulo0L_add0L = 0;
static size_t rd_ulo0L_add0L = 0;
static size_t wr_uhi0L_add0L = 0;
static size_t rd_uhi0L_add0L = 0;
static size_t wr_hi0_pre0H = 0;
static size_t rd_hi0_pre0H = 0;
static size_t wr_pre0H_lo0H = 0;
static size_t rd_pre0H_lo0H = 0;
static size_t wr_pre0H_hi0H = 0;
static size_t rd_pre0H_hi0H = 0;
static size_t wr_lo0H_pre0HL = 0;
static size_t rd_lo0H_pre0HL = 0;
static size_t wr_pre0HL_lo0HL = 0;
static size_t rd_pre0HL_lo0HL = 0;
static size_t wr_pre0HL_hi0HL = 0;
static size_t rd_pre0HL_hi0HL = 0;
static size_t wr_lo0HL_ulo0HL = 0;
static size_t rd_lo0HL_ulo0HL = 0;
static size_t wr_hi0HL_uhi0HL = 0;
static size_t rd_hi0HL_uhi0HL = 0;
static size_t wr_ulo0HL_add0HL = 0;
static size_t rd_ulo0HL_add0HL = 0;
static size_t wr_uhi0HL_add0HL = 0;
static size_t rd_uhi0HL_add0HL = 0;
static size_t wr_hi0H_pre0HH = 0;
static size_t rd_hi0H_pre0HH = 0;
static size_t wr_pre0HH_lo0HH = 0;
static size_t rd_pre0HH_lo0HH = 0;
static size_t wr_pre0HH_hi0HH = 0;
static size_t rd_pre0HH_hi0HH = 0;
static size_t wr_lo0HH_ulo0HH = 0;
static size_t rd_lo0HH_ulo0HH = 0;
static size_t wr_hi0HH_uhi0HH = 0;
static size_t rd_hi0HH_uhi0HH = 0;
static size_t wr_ulo0HH_add0HH = 0;
static size_t rd_ulo0HH_add0HH = 0;
static size_t wr_uhi0HH_add0HH = 0;
static size_t rd_uhi0HH_add0HH = 0;
static size_t wr_add0HL_ulo0H = 0;
static size_t rd_add0HL_ulo0H = 0;
static size_t wr_add0HH_uhi0H = 0;
static size_t rd_add0HH_uhi0H = 0;
static size_t wr_ulo0H_add0H = 0;
static size_t rd_ulo0H_add0H = 0;
static size_t wr_uhi0H_add0H = 0;
static size_t rd_uhi0H_add0H = 0;
static size_t wr_add0L_ulo0 = 0;
static size_t rd_add0L_ulo0 = 0;
static size_t wr_add0H_uhi0 = 0;
static size_t rd_add0H_uhi0 = 0;
static size_t wr_ulo0_add0 = 0;
static size_t rd_ulo0_add0 = 0;
static size_t wr_uhi0_add0 = 0;
static size_t rd_uhi0_add0 = 0;
static size_t wr_add0_snk = 0;
static size_t rd_add0_snk = 0;

#define fire_src(p0) /* actor code block */
#define fire_snk(p0) /* actor code block */
#define fire_pre0(p0, p1, p2) /* actor code block */
#define fire_lo0(p0, p1) /* actor code block */
#define fire_hi0(p0, p1) /* actor code block */
#define fire_ulo0(p0, p1) /* actor code block */
#define fire_uhi0(p0, p1) /* actor code block */
#define fire_add0(p0, p1, p2) /* actor code block */
#define fire_pre0L(p0, p1, p2) /* actor code block */
#define fire_lo0L(p0, p1) /* actor code block */
#define fire_hi0L(p0, p1) /* actor code block */
#define fire_ulo0L(p0, p1) /* actor code block */
#define fire_uhi0L(p0, p1) /* actor code block */
#define fire_add0L(p0, p1, p2) /* actor code block */
#define fire_pre0LL(p0, p1, p2) /* actor code block */
#define fire_lo0LL(p0, p1) /* actor code block */
#define fire_hi0LL(p0, p1) /* actor code block */
#define fire_ulo0LL(p0, p1) /* actor code block */
#define fire_uhi0LL(p0, p1) /* actor code block */
#define fire_add0LL(p0, p1, p2) /* actor code block */
#define fire_pre0LH(p0, p1, p2) /* actor code block */
#define fire_lo0LH(p0, p1) /* actor code block */
#define fire_hi0LH(p0, p1) /* actor code block */
#define fire_ulo0LH(p0, p1) /* actor code block */
#define fire_uhi0LH(p0, p1) /* actor code block */
#define fire_add0LH(p0, p1, p2) /* actor code block */
#define fire_pre0H(p0, p1, p2) /* actor code block */
#define fire_lo0H(p0, p1) /* actor code block */
#define fire_hi0H(p0, p1) /* actor code block */
#define fire_ulo0H(p0, p1) /* actor code block */
#define fire_uhi0H(p0, p1) /* actor code block */
#define fire_add0H(p0, p1, p2) /* actor code block */
#define fire_pre0HL(p0, p1, p2) /* actor code block */
#define fire_lo0HL(p0, p1) /* actor code block */
#define fire_hi0HL(p0, p1) /* actor code block */
#define fire_ulo0HL(p0, p1) /* actor code block */
#define fire_uhi0HL(p0, p1) /* actor code block */
#define fire_add0HL(p0, p1, p2) /* actor code block */
#define fire_pre0HH(p0, p1, p2) /* actor code block */
#define fire_lo0HH(p0, p1) /* actor code block */
#define fire_hi0HH(p0, p1) /* actor code block */
#define fire_ulo0HH(p0, p1) /* actor code block */
#define fire_uhi0HH(p0, p1) /* actor code block */
#define fire_add0HH(p0, p1, p2) /* actor code block */

void run_one_period(void)
{
    {
        wr_lo0L_pre0LL = 0;
        rd_lo0L_pre0LL = 0;
        wr_hi0L_pre0LH = 0;
        rd_hi0L_pre0LH = 0;
        wr_hi0_pre0H = 0;
        rd_hi0_pre0H = 0;
        for (int i2 = 0; i2 < 2; ++i2) {
            wr_lo0_pre0L = 0;
            rd_lo0_pre0L = 0;
            for (int i3 = 0; i3 < 2; ++i3) {
                wr_pre0_lo0 = 0;
                rd_pre0_lo0 = 0;
                wr_pre0_hi0 = 0;
                rd_pre0_hi0 = 0;
                for (int i4 = 0; i4 < 2; ++i4) {
                    wr_src_pre0 = 0;
                    rd_src_pre0 = 0;
                    {
                        fire_src(BUF_SRC_PRE0 + wr_src_pre0);
                        wr_src_pre0 += 1;
                    }
                    {
                        fire_pre0(BUF_SRC_PRE0 + rd_src_pre0, BUF_PRE0_LO0 + wr_pre0_lo0, BUF_PRE0_HI0 + wr_pre0_hi0);
                        rd_src_pre0 += 1;
                        wr_pre0_lo0 += 1;
                        wr_pre0_hi0 += 1;
                    }
                }
                {
                    {
                        fire_lo0(BUF_PRE0_LO0 + rd_pre0_lo0, BUF_LO0_PRE0L + wr_lo0_pre0L);
                        rd_pre0_lo0 += 2;
                        wr_lo0_pre0L += 1;
                    }
                    {
                        fire_hi0(BUF_PRE0_HI0 + rd_pre0_hi0, BUF_HI0_PRE0H + wr_hi0_pre0H);
                        rd_pre0_hi0 += 2;
                        wr_hi0_pre0H += 1;
                    }
                }
            }
            {
                wr_pre0L_lo0L = 0;
                rd_pre0L_lo0L = 0;
                wr_pre0L_hi0L = 0;
                rd_pre0L_hi0L = 0;
                for (int r = 0; r < 2; ++r) {
                    fire_pre0L(BUF_LO0_PRE0L + rd_lo0_pre0L, BUF_PRE0L_LO0L + wr_pre0L_lo0L, BUF_PRE0L_HI0L + wr_pre0L_hi0L);
                    rd_lo0_pre0L += 1;
                    wr_pre0L_lo0L += 1;
                    wr_pre0L_hi0L += 1;
                }
                {
                    {
                        fire_lo0L(BUF_PRE0L_LO0L + rd_pre0L_lo0L, BUF_LO0L_PRE0LL + wr_lo0L_pre0LL);
                        rd_pre0L_lo0L += 2;
                        wr_lo0L_pre0LL += 1;
                    }
                    {
                        fire_hi0L(BUF_PRE0L_HI0L + rd_pre0L_hi0L, BUF_HI0L_PRE0LH + wr_hi0L_pre0LH);
                        rd_pre0L_hi0L += 2;
                        wr_hi0L_pre0LH += 1;
                    }
                }
            }
        }
        {
            wr_pre0LL_lo0LL = 0;
            rd_pre0LL_lo0LL = 0;
            wr_pre0LL_hi0LL = 0;
            rd_pre0LL_hi0LL = 0;
            for (int r = 0; r < 2; ++r) {
                fire_pre0LL(BUF_LO0L_PRE0LL + rd_lo0L_pre0LL, BUF_PRE0LL_LO0LL + wr_pre0LL_lo0LL, BUF_PRE0LL_HI0LL + wr_pre0LL_hi0LL);
                rd_lo0L_pre0LL += 1;
                wr_pre0LL_lo0LL += 1;
                wr_pre0LL_hi0LL += 1;
            }
            {
                wr_lo0LL_ulo0LL = 0;
                rd_lo0LL_ulo0LL = 0;
                {
                    fire_lo0LL(BUF_PRE0LL_LO0LL + rd_pre0LL_lo0LL, BUF_LO0LL_ULO0LL + wr_lo0LL_ulo0LL);
                    rd_pre0LL_lo0LL += 2;
                    wr_lo0LL_ulo0LL += 1;
                }
                {
                    wr_hi0LL_uhi0LL = 0;
                    rd_hi0LL_uhi0LL = 0;
                    {
                        fire_hi0LL(BUF_PRE0LL_HI0LL + rd_pre0LL_hi0LL, BUF_HI0LL_UHI0LL + wr_hi0LL_uhi0LL);
                        rd_pre0LL_hi0LL += 2;
                        wr_hi0LL_uhi0LL += 1;
                    }
                    {
                        wr_ulo0LL_add0LL = 0;
                        rd_ulo0LL_add0LL = 0;
                        {
                            fire_ulo0LL(BUF_LO0LL_ULO0LL + rd_lo0LL_ulo0LL, BUF_ULO0LL_ADD0LL + wr_ulo0LL_add0LL);
                            rd_lo0LL_ulo0LL += 1;
                            wr_ulo0LL_add0LL += 2;
                        }
                        {
                            wr_uhi0LL_add0LL = 0;
                            rd_uhi0LL_add0LL = 0;
                            {
                                fire_uhi0LL(BUF_HI0LL_UHI0LL + rd_hi0LL_uhi0LL, BUF_UHI0LL_ADD0LL + wr_uhi0LL_add0LL);
                                rd_hi0LL_uhi0LL += 1;
                                wr_uhi0LL_add0LL += 2;
                            }
                            {
                                wr_add0LL_ulo0L = 0;
                                rd_add0LL_ulo0L = 0;
                                for (int r = 0; r < 2; ++r) {
                                    fire_add0LL(BUF_ULO0LL_ADD0LL + rd_ulo0LL_add0LL, BUF_UHI0LL_ADD0LL + rd_uhi0LL_add0LL, BUF_ADD0LL_ULO0L + wr_add0LL_ulo0L);
                                    rd_ulo0LL_add0LL += 1;
                                    rd_uhi0LL_add0LL += 1;
                                    wr_add0LL_ulo0L += 1;
                                }
                                {
                                    wr_pre0LH_lo0LH = 0;
                                    rd_pre0LH_lo0LH = 0;
                                    wr_pre0LH_hi0LH = 0;
                                    rd_pre0LH_hi0LH = 0;
                                    for (int r = 0; r < 2; ++r) {
                                        fire_pre0LH(BUF_HI0L_PRE0LH + rd_hi0L_pre0LH, BUF_PRE0LH_LO0LH + wr_pre0LH_lo0LH, BUF_PRE0LH_HI0LH + wr_pre0LH_hi0LH);
                                        rd_hi0L_pre0LH += 1;
                                        wr_pre0LH_lo0LH += 1;
                                        wr_pre0LH_hi0LH += 1;
                                    }
                                    {
                                        wr_lo0LH_ulo0LH = 0;
                                        rd_lo0LH_ulo0LH = 0;
                                        {
                                            fire_lo0LH(BUF_PRE0LH_LO0LH + rd_pre0LH_lo0LH, BUF_LO0LH_ULO0LH + wr_lo0LH_ulo0LH);
                                            rd_pre0LH_lo0LH += 2;
                                            wr_lo0LH_ulo0LH += 1;
                                        }
                                        {
                                            wr_hi0LH_uhi0LH = 0;
                                            rd_hi0LH_uhi0LH = 0;
                                            {
                                                fire_hi0LH(BUF_PRE0LH_HI0LH + rd_pre0LH_hi0LH, BUF_HI0LH_UHI0LH + wr_hi0LH_uhi0LH);
                                                rd_pre0LH_hi0LH += 2;
                                                wr_hi0LH_uhi0LH += 1;
                                            }
                                            {
                                                wr_ulo0L_add0L = 0;
                                                rd_ulo0L_add0L = 0;
                                                for (int r = 0; r < 2; ++r) {
                                                    fire_ulo0L(BUF_ADD0LL_ULO0L + rd_add0LL_ulo0L, BUF_ULO0L_ADD0L + wr_ulo0L_add0L);
                                                    rd_add0LL_ulo0L += 1;
                                                    wr_ulo0L_add0L += 2;
                                                }
                                                {
                                                    wr_ulo0LH_add0LH = 0;
                                                    rd_ulo0LH_add0LH = 0;
                                                    {
                                                        fire_ulo0LH(BUF_LO0LH_ULO0LH + rd_lo0LH_ulo0LH, BUF_ULO0LH_ADD0LH + wr_ulo0LH_add0LH);
                                                        rd_lo0LH_ulo0LH += 1;
                                                        wr_ulo0LH_add0LH += 2;
                                                    }
                                                    {
                                                        wr_uhi0LH_add0LH = 0;
                                                        rd_uhi0LH_add0LH = 0;
                                                        {
                                                            fire_uhi0LH(BUF_HI0LH_UHI0LH + rd_hi0LH_uhi0LH, BUF_UHI0LH_ADD0LH + wr_uhi0LH_add0LH);
                                                            rd_hi0LH_uhi0LH += 1;
                                                            wr_uhi0LH_add0LH += 2;
                                                        }
                                                        {
                                                            wr_add0LH_uhi0L = 0;
                                                            rd_add0LH_uhi0L = 0;
                                                            for (int r = 0; r < 2; ++r) {
                                                                fire_add0LH(BUF_ULO0LH_ADD0LH + rd_ulo0LH_add0LH, BUF_UHI0LH_ADD0LH + rd_uhi0LH_add0LH, BUF_ADD0LH_UHI0L + wr_add0LH_uhi0L);
                                                                rd_ulo0LH_add0LH += 1;
                                                                rd_uhi0LH_add0LH += 1;
                                                                wr_add0LH_uhi0L += 1;
                                                            }
                                                            {
                                                                wr_ulo0_add0 = 0;
                                                                rd_ulo0_add0 = 0;
                                                                for (int i16 = 0; i16 < 2; ++i16) {
                                                                    wr_uhi0L_add0L = 0;
                                                                    rd_uhi0L_add0L = 0;
                                                                    {
                                                                        fire_uhi0L(BUF_ADD0LH_UHI0L + rd_add0LH_uhi0L, BUF_UHI0L_ADD0L + wr_uhi0L_add0L);
                                                                        rd_add0LH_uhi0L += 1;
                                                                        wr_uhi0L_add0L += 2;
                                                                    }
                                                                    for (int i17 = 0; i17 < 2; ++i17) {
                                                                        wr_add0L_ulo0 = 0;
                                                                        rd_add0L_ulo0 = 0;
                                                                        {
                                                                            fire_add0L(BUF_ULO0L_ADD0L + rd_ulo0L_add0L, BUF_UHI0L_ADD0L + rd_uhi0L_add0L, BUF_ADD0L_ULO0 + wr_add0L_ulo0);
                                                                            rd_ulo0L_add0L += 1;
                                                                            rd_uhi0L_add0L += 1;
                                                                            wr_add0L_ulo0 += 1;
                                                                        }
                                                                        {
                                                                            fire_ulo0(BUF_ADD0L_ULO0 + rd_add0L_ulo0, BUF_ULO0_ADD0 + wr_ulo0_add0);
                                                                            rd_add0L_ulo0 += 1;
                                                                            wr_ulo0_add0 += 2;
                                                                        }
                                                                    }
                                                                }
                                                                {
                                                                    wr_lo0H_pre0HL = 0;
                                                                    rd_lo0H_pre0HL = 0;
                                                                    wr_hi0H_pre0HH = 0;
                                                                    rd_hi0H_pre0HH = 0;
                                                                    for (int i17 = 0; i17 < 2; ++i17) {
                                                                        wr_pre0H_lo0H = 0;
                                                                        rd_pre0H_lo0H = 0;
                                                                        wr_pre0H_hi0H = 0;
                                                                        rd_pre0H_hi0H = 0;
                                                                        for (int r = 0; r < 2; ++r) {
                                                                            fire_pre0H(BUF_HI0_PRE0H + rd_hi0_pre0H, BUF_PRE0H_LO0H + wr_pre0H_lo0H, BUF_PRE0H_HI0H + wr_pre0H_hi0H);
                                                                            rd_hi0_pre0H += 1;
                                                                            wr_pre0H_lo0H += 1;
                                                                            wr_pre0H_hi0H += 1;
                                                                        }
                                                                        {
                                                                            {
                                                                                fire_lo0H(BUF_PRE0H_LO0H + rd_pre0H_lo0H, BUF_LO0H_PRE0HL + wr_lo0H_pre0HL);
                                                                                rd_pre0H_lo0H += 2;
                                                                                wr_lo0H_pre0HL += 1;
                                                                            }
                                                                            {
                                                                                fire_hi0H(BUF_PRE0H_HI0H + rd_pre0H_hi0H, BUF_HI0H_PRE0HH + wr_hi0H_pre0HH);
                                                                                rd_pre0H_hi0H += 2;
                                                                                wr_hi0H_pre0HH += 1;
                                                                            }
                                                                        }
                                                                    }
                                                                    {
                                                                        wr_pre0HL_lo0HL = 0;
                                                                        rd_pre0HL_lo0HL = 0;
                                                                        wr_pre0HL_hi0HL = 0;
                                                                        rd_pre0HL_hi0HL = 0;
                                                                        for (int r = 0; r < 2; ++r) {
                                                                            fire_pre0HL(BUF_LO0H_PRE0HL + rd_lo0H_pre0HL, BUF_PRE0HL_LO0HL + wr_pre0HL_lo0HL, BUF_PRE0HL_HI0HL + wr_pre0HL_hi0HL);
                                                                            rd_lo0H_pre0HL += 1;
                                                                            wr_pre0HL_lo0HL += 1;
                                                                            wr_pre0HL_hi0HL += 1;
                                                                        }
                                                                        {
                                                                            wr_lo0HL_ulo0HL = 0;
                                                                            rd_lo0HL_ulo0HL = 0;
                                                                            {
                                                                                fire_lo0HL(BUF_PRE0HL_LO0HL + rd_pre0HL_lo0HL, BUF_LO0HL_ULO0HL + wr_lo0HL_ulo0HL);
                                                                                rd_pre0HL_lo0HL += 2;
                                                                                wr_lo0HL_ulo0HL += 1;
                                                                            }
                                                                            {
                                                                                wr_hi0HL_uhi0HL = 0;
                                                                                rd_hi0HL_uhi0HL = 0;
                                                                                {
                                                                                    fire_hi0HL(BUF_PRE0HL_HI0HL + rd_pre0HL_hi0HL, BUF_HI0HL_UHI0HL + wr_hi0HL_uhi0HL);
                                                                                    rd_pre0HL_hi0HL += 2;
                                                                                    wr_hi0HL_uhi0HL += 1;
                                                                                }
                                                                                {
                                                                                    wr_ulo0HL_add0HL = 0;
                                                                                    rd_ulo0HL_add0HL = 0;
                                                                                    {
                                                                                        fire_ulo0HL(BUF_LO0HL_ULO0HL + rd_lo0HL_ulo0HL, BUF_ULO0HL_ADD0HL + wr_ulo0HL_add0HL);
                                                                                        rd_lo0HL_ulo0HL += 1;
                                                                                        wr_ulo0HL_add0HL += 2;
                                                                                    }
                                                                                    {
                                                                                        wr_uhi0HL_add0HL = 0;
                                                                                        rd_uhi0HL_add0HL = 0;
                                                                                        {
                                                                                            fire_uhi0HL(BUF_HI0HL_UHI0HL + rd_hi0HL_uhi0HL, BUF_UHI0HL_ADD0HL + wr_uhi0HL_add0HL);
                                                                                            rd_hi0HL_uhi0HL += 1;
                                                                                            wr_uhi0HL_add0HL += 2;
                                                                                        }
                                                                                        {
                                                                                            wr_add0HL_ulo0H = 0;
                                                                                            rd_add0HL_ulo0H = 0;
                                                                                            for (int r = 0; r < 2; ++r) {
                                                                                                fire_add0HL(BUF_ULO0HL_ADD0HL + rd_ulo0HL_add0HL, BUF_UHI0HL_ADD0HL + rd_uhi0HL_add0HL, BUF_ADD0HL_ULO0H + wr_add0HL_ulo0H);
                                                                                                rd_ulo0HL_add0HL += 1;
                                                                                                rd_uhi0HL_add0HL += 1;
                                                                                                wr_add0HL_ulo0H += 1;
                                                                                            }
                                                                                            {
                                                                                                wr_pre0HH_lo0HH = 0;
                                                                                                rd_pre0HH_lo0HH = 0;
                                                                                                wr_pre0HH_hi0HH = 0;
                                                                                                rd_pre0HH_hi0HH = 0;
                                                                                                for (int r = 0; r < 2; ++r) {
                                                                                                    fire_pre0HH(BUF_HI0H_PRE0HH + rd_hi0H_pre0HH, BUF_PRE0HH_LO0HH + wr_pre0HH_lo0HH, BUF_PRE0HH_HI0HH + wr_pre0HH_hi0HH);
                                                                                                    rd_hi0H_pre0HH += 1;
                                                                                                    wr_pre0HH_lo0HH += 1;
                                                                                                    wr_pre0HH_hi0HH += 1;
                                                                                                }
                                                                                                {
                                                                                                    wr_lo0HH_ulo0HH = 0;
                                                                                                    rd_lo0HH_ulo0HH = 0;
                                                                                                    {
                                                                                                        fire_lo0HH(BUF_PRE0HH_LO0HH + rd_pre0HH_lo0HH, BUF_LO0HH_ULO0HH + wr_lo0HH_ulo0HH);
                                                                                                        rd_pre0HH_lo0HH += 2;
                                                                                                        wr_lo0HH_ulo0HH += 1;
                                                                                                    }
                                                                                                    {
                                                                                                        wr_hi0HH_uhi0HH = 0;
                                                                                                        rd_hi0HH_uhi0HH = 0;
                                                                                                        {
                                                                                                            fire_hi0HH(BUF_PRE0HH_HI0HH + rd_pre0HH_hi0HH, BUF_HI0HH_UHI0HH + wr_hi0HH_uhi0HH);
                                                                                                            rd_pre0HH_hi0HH += 2;
                                                                                                            wr_hi0HH_uhi0HH += 1;
                                                                                                        }
                                                                                                        {
                                                                                                            wr_ulo0HH_add0HH = 0;
                                                                                                            rd_ulo0HH_add0HH = 0;
                                                                                                            {
                                                                                                                fire_ulo0HH(BUF_LO0HH_ULO0HH + rd_lo0HH_ulo0HH, BUF_ULO0HH_ADD0HH + wr_ulo0HH_add0HH);
                                                                                                                rd_lo0HH_ulo0HH += 1;
                                                                                                                wr_ulo0HH_add0HH += 2;
                                                                                                            }
                                                                                                            {
                                                                                                                wr_uhi0HH_add0HH = 0;
                                                                                                                rd_uhi0HH_add0HH = 0;
                                                                                                                {
                                                                                                                    fire_uhi0HH(BUF_HI0HH_UHI0HH + rd_hi0HH_uhi0HH, BUF_UHI0HH_ADD0HH + wr_uhi0HH_add0HH);
                                                                                                                    rd_hi0HH_uhi0HH += 1;
                                                                                                                    wr_uhi0HH_add0HH += 2;
                                                                                                                }
                                                                                                                {
                                                                                                                    wr_add0HH_uhi0H = 0;
                                                                                                                    rd_add0HH_uhi0H = 0;
                                                                                                                    for (int r = 0; r < 2; ++r) {
                                                                                                                        fire_add0HH(BUF_ULO0HH_ADD0HH + rd_ulo0HH_add0HH, BUF_UHI0HH_ADD0HH + rd_uhi0HH_add0HH, BUF_ADD0HH_UHI0H + wr_add0HH_uhi0H);
                                                                                                                        rd_ulo0HH_add0HH += 1;
                                                                                                                        rd_uhi0HH_add0HH += 1;
                                                                                                                        wr_add0HH_uhi0H += 1;
                                                                                                                    }
                                                                                                                    for (int i29 = 0; i29 < 2; ++i29) {
                                                                                                                        wr_ulo0H_add0H = 0;
                                                                                                                        rd_ulo0H_add0H = 0;
                                                                                                                        {
                                                                                                                            fire_ulo0H(BUF_ADD0HL_ULO0H + rd_add0HL_ulo0H, BUF_ULO0H_ADD0H + wr_ulo0H_add0H);
                                                                                                                            rd_add0HL_ulo0H += 1;
                                                                                                                            wr_ulo0H_add0H += 2;
                                                                                                                        }
                                                                                                                        {
                                                                                                                            wr_uhi0H_add0H = 0;
                                                                                                                            rd_uhi0H_add0H = 0;
                                                                                                                            {
                                                                                                                                fire_uhi0H(BUF_ADD0HH_UHI0H + rd_add0HH_uhi0H, BUF_UHI0H_ADD0H + wr_uhi0H_add0H);
                                                                                                                                rd_add0HH_uhi0H += 1;
                                                                                                                                wr_uhi0H_add0H += 2;
                                                                                                                            }
                                                                                                                            {
                                                                                                                                wr_add0H_uhi0 = 0;
                                                                                                                                rd_add0H_uhi0 = 0;
                                                                                                                                for (int r = 0; r < 2; ++r) {
                                                                                                                                    fire_add0H(BUF_ULO0H_ADD0H + rd_ulo0H_add0H, BUF_UHI0H_ADD0H + rd_uhi0H_add0H, BUF_ADD0H_UHI0 + wr_add0H_uhi0);
                                                                                                                                    rd_ulo0H_add0H += 1;
                                                                                                                                    rd_uhi0H_add0H += 1;
                                                                                                                                    wr_add0H_uhi0 += 1;
                                                                                                                                }
                                                                                                                                for (int i32 = 0; i32 < 2; ++i32) {
                                                                                                                                    wr_uhi0_add0 = 0;
                                                                                                                                    rd_uhi0_add0 = 0;
                                                                                                                                    {
                                                                                                                                        fire_uhi0(BUF_ADD0H_UHI0 + rd_add0H_uhi0, BUF_UHI0_ADD0 + wr_uhi0_add0);
                                                                                                                                        rd_add0H_uhi0 += 1;
                                                                                                                                        wr_uhi0_add0 += 2;
                                                                                                                                    }
                                                                                                                                    for (int i33 = 0; i33 < 2; ++i33) {
                                                                                                                                        wr_add0_snk = 0;
                                                                                                                                        rd_add0_snk = 0;
                                                                                                                                        {
                                                                                                                                            fire_add0(BUF_ULO0_ADD0 + rd_ulo0_add0, BUF_UHI0_ADD0 + rd_uhi0_add0, BUF_ADD0_SNK + wr_add0_snk);
                                                                                                                                            rd_ulo0_add0 += 1;
                                                                                                                                            rd_uhi0_add0 += 1;
                                                                                                                                            wr_add0_snk += 1;
                                                                                                                                        }
                                                                                                                                        {
                                                                                                                                            fire_snk(BUF_ADD0_SNK + rd_add0_snk);
                                                                                                                                            rd_add0_snk += 1;
                                                                                                                                        }
                                                                                                                                    }
                                                                                                                                }
                                                                                                                            }
                                                                                                                        }
                                                                                                                    }
                                                                                                                }
                                                                                                            }
                                                                                                        }
                                                                                                    }
                                                                                                }
                                                                                            }
                                                                                        }
                                                                                    }
                                                                                }
                                                                            }
                                                                        }
                                                                    }
                                                                }
                                                            }
                                                        }
                                                    }
                                                }
                                            }
                                        }
                                    }
                                }
                            }
                        }
                    }
                }
            }
        }
    }
}

void init_delays(void)
{
}

int main(void)
{
    init_delays();
    for (;;) {
        run_one_period();
    }
    return 0;
}
